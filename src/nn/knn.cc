#include "nn/knn.h"

#include <algorithm>
#include <cmath>

#include "common/hot_path.h"
#include "common/logging.h"
#include "nn/kernels.h"

namespace schemble {

namespace {

/// Rows per MaskedSquaredDistances call: large enough to amortize dispatch,
/// small enough that the distance block stays in L1.
constexpr int kDistanceBlock = 256;

/// Lexicographic (squared distance, index) order — the deterministic
/// neighbor ranking shared with ReferenceKnnIndex. During selection
/// Neighbor::distance holds the SQUARED distance; sqrt is applied once when
/// results are emitted.
bool SqIndexLess(const KnnIndex::Neighbor& a, const KnnIndex::Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

/// resize() that records a grow event whenever the buffer's capacity was
/// insufficient (the steady-state zero-allocation invariant the equivalence
/// suite asserts, mirroring DpScheduler::WorkspaceStats).
template <typename T>
void ResizeTracked(std::vector<T>* v, size_t n, int64_t* grow_events) {
  if (v->capacity() < n) ++(*grow_events);
  v->resize(n);
}

}  // namespace

Result<KnnIndex> KnnIndex::Build(std::vector<std::vector<double>> records) {
  if (records.empty()) {
    return Status::InvalidArgument("KNN index needs at least one record");
  }
  const size_t dim = records[0].size();
  if (dim == 0) return Status::InvalidArgument("KNN records must be non-empty");
  for (const auto& r : records) {
    if (r.size() != dim) {
      return Status::InvalidArgument("KNN records must share a dimension");
    }
  }
  // Validated: repack the ragged input into one flat row-major buffer so
  // the per-query distance scan streams contiguous memory.
  std::vector<double> data;
  data.reserve(records.size() * dim);
  for (const auto& r : records) data.insert(data.end(), r.begin(), r.end());
  return KnnIndex(static_cast<int>(records.size()), static_cast<int>(dim),
                  std::move(data));
}

SCHEMBLE_HOT void KnnIndex::PackMask(const std::vector<bool>& mask,
                                     Workspace* ws) const {
  const size_t n = mask.size();
  if (ws->observed.capacity() < n) ++ws->stats.grow_events;
  if (ws->missing.capacity() < n) ++ws->stats.grow_events;
  ws->observed.clear();
  ws->observed.reserve(n);
  ws->missing.clear();
  ws->missing.reserve(n);
  for (size_t d = 0; d < n; ++d) {
    if (mask[d]) {
      ws->observed.push_back(static_cast<int>(d));
    } else {
      ws->missing.push_back(static_cast<int>(d));
    }
  }
}

SCHEMBLE_HOT void KnnIndex::SelectTopK(int k, Workspace* ws) const {
  const size_t take = std::min<size_t>(k, num_records_);
  if (ws->heap.capacity() < take) ++ws->stats.grow_events;
  ws->heap.clear();
  ws->heap.reserve(take);
  const int block = std::min(kDistanceBlock, num_records_);
  ResizeTracked(&ws->dist, static_cast<size_t>(block), &ws->stats.grow_events);

  const int num_obs = static_cast<int>(ws->observed.size());
  for (int start = 0; start < num_records_; start += kDistanceBlock) {
    const int rows = std::min(kDistanceBlock, num_records_ - start);
    kernels::MaskedSquaredDistances(row(start), rows, dim_,
                                    ws->point_obs.data(), ws->observed.data(),
                                    num_obs, ws->dist.data());
    for (int r = 0; r < rows; ++r) {
      const Neighbor cand{start + r, ws->dist[r]};
      if (ws->heap.size() < take) {
        ws->heap.push_back(cand);
        std::push_heap(ws->heap.begin(), ws->heap.end(), SqIndexLess);
      } else if (SqIndexLess(cand, ws->heap.front())) {
        // Strictly better than the current worst: replace it. Ties never
        // replace (the scan runs in ascending index order), preserving the
        // lowest-index winner on equal distances.
        std::pop_heap(ws->heap.begin(), ws->heap.end(), SqIndexLess);
        ws->heap.back() = cand;
        std::push_heap(ws->heap.begin(), ws->heap.end(), SqIndexLess);
      }
    }
  }
  std::sort(ws->heap.begin(), ws->heap.end(), SqIndexLess);
  ++ws->stats.queries;
}

SCHEMBLE_HOT void KnnIndex::QueryInto(const std::vector<double>& point,
                                      const std::vector<bool>& mask, int k,
                                      Workspace* ws,
                                      std::vector<Neighbor>* out) const {
  SCHEMBLE_CHECK(ws != nullptr && out != nullptr);
  SCHEMBLE_CHECK_EQ(point.size(), mask.size());
  SCHEMBLE_CHECK_EQ(static_cast<int>(point.size()), dim_);
  SCHEMBLE_CHECK_GT(k, 0);
  PackMask(mask, ws);
  SCHEMBLE_CHECK(!ws->observed.empty());
  ResizeTracked(&ws->point_obs, ws->observed.size(), &ws->stats.grow_events);
  for (size_t t = 0; t < ws->observed.size(); ++t) {
    ws->point_obs[t] = point[ws->observed[t]];
  }
  SelectTopK(k, ws);
  ResizeTracked(out, ws->heap.size(), &ws->stats.grow_events);
  for (size_t i = 0; i < ws->heap.size(); ++i) {
    (*out)[i] = {ws->heap[i].index, std::sqrt(ws->heap[i].distance)};
  }
}

std::vector<KnnIndex::Neighbor> KnnIndex::Query(
    const std::vector<double>& point, const std::vector<bool>& mask,
    int k) const {
  Workspace ws;
  std::vector<Neighbor> out;
  QueryInto(point, mask, k, &ws, &out);
  return out;
}

SCHEMBLE_HOT void KnnIndex::FillFromNeighbors(
    const std::vector<double>& point, Workspace* ws,
    std::vector<double>* out) const {
  if (out != &point) {
    ResizeTracked(out, point.size(), &ws->stats.grow_events);
    std::copy(point.begin(), point.end(), out->begin());
  }
  if (ws->missing.empty()) return;
  ResizeTracked(&ws->accum, ws->missing.size(), &ws->stats.grow_events);
  std::fill(ws->accum.begin(), ws->accum.end(), 0.0);
  // Inverse-distance weights; an exact match dominates. The neighbor-major
  // accumulation below performs, per missing coordinate, the same addition
  // sequence as the coordinate-major reference loop — filled values stay
  // bit-identical (the equivalence suite asserts this against
  // ReferenceKnnIndex).
  double total = 0.0;
  const int n_missing = static_cast<int>(ws->missing.size());
  for (const Neighbor& nb : ws->heap) {
    const double w = 1.0 / (std::sqrt(nb.distance) + 1e-9);
    total += w;
    kernels::GatherAxpy(w, row(nb.index), ws->missing.data(), n_missing,
                        ws->accum.data());
  }
  for (int t = 0; t < n_missing; ++t) {
    (*out)[ws->missing[t]] = ws->accum[t] / total;
  }
}

SCHEMBLE_HOT void KnnIndex::FillMissingInto(
    const std::vector<double>& point, const std::vector<bool>& mask, int k,
    Workspace* ws, std::vector<double>* out) const {
  SCHEMBLE_CHECK(ws != nullptr && out != nullptr);
  SCHEMBLE_CHECK_EQ(point.size(), mask.size());
  SCHEMBLE_CHECK_EQ(static_cast<int>(point.size()), dim_);
  SCHEMBLE_CHECK_GT(k, 0);
  PackMask(mask, ws);
  SCHEMBLE_CHECK(!ws->observed.empty());
  ResizeTracked(&ws->point_obs, ws->observed.size(), &ws->stats.grow_events);
  for (size_t t = 0; t < ws->observed.size(); ++t) {
    ws->point_obs[t] = point[ws->observed[t]];
  }
  SelectTopK(k, ws);
  FillFromNeighbors(point, ws, out);
}

std::vector<double> KnnIndex::FillMissing(const std::vector<double>& point,
                                          const std::vector<bool>& mask,
                                          int k) const {
  Workspace ws;
  std::vector<double> out;
  FillMissingInto(point, mask, k, &ws, &out);
  return out;
}

SCHEMBLE_HOT void KnnIndex::QueryBatch(
    const std::vector<std::vector<double>>& points,
    const std::vector<bool>& mask, int k, Workspace* ws,
    std::vector<std::vector<Neighbor>>* out) const {
  SCHEMBLE_CHECK(ws != nullptr && out != nullptr);
  SCHEMBLE_CHECK_GT(k, 0);
  SCHEMBLE_CHECK_EQ(static_cast<int>(mask.size()), dim_);
  PackMask(mask, ws);
  SCHEMBLE_CHECK(!ws->observed.empty());
  if (out->capacity() < points.size()) ++ws->stats.grow_events;
  out->resize(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const std::vector<double>& point = points[i];
    SCHEMBLE_CHECK_EQ(static_cast<int>(point.size()), dim_);
    ResizeTracked(&ws->point_obs, ws->observed.size(),
                  &ws->stats.grow_events);
    for (size_t t = 0; t < ws->observed.size(); ++t) {
      ws->point_obs[t] = point[ws->observed[t]];
    }
    SelectTopK(k, ws);
    std::vector<Neighbor>& dst = (*out)[i];
    ResizeTracked(&dst, ws->heap.size(), &ws->stats.grow_events);
    for (size_t j = 0; j < ws->heap.size(); ++j) {
      dst[j] = {ws->heap[j].index, std::sqrt(ws->heap[j].distance)};
    }
  }
}

SCHEMBLE_HOT void KnnIndex::FillMissingBatch(
    const std::vector<std::vector<double>>& points,
    const std::vector<bool>& mask, int k, Workspace* ws,
    std::vector<std::vector<double>>* out) const {
  SCHEMBLE_CHECK(ws != nullptr && out != nullptr);
  SCHEMBLE_CHECK_GT(k, 0);
  SCHEMBLE_CHECK_EQ(static_cast<int>(mask.size()), dim_);
  PackMask(mask, ws);
  SCHEMBLE_CHECK(!ws->observed.empty());
  if (out->capacity() < points.size()) ++ws->stats.grow_events;
  out->resize(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const std::vector<double>& point = points[i];
    SCHEMBLE_CHECK_EQ(static_cast<int>(point.size()), dim_);
    ResizeTracked(&ws->point_obs, ws->observed.size(),
                  &ws->stats.grow_events);
    for (size_t t = 0; t < ws->observed.size(); ++t) {
      ws->point_obs[t] = point[ws->observed[t]];
    }
    SelectTopK(k, ws);
    FillFromNeighbors(point, ws, &(*out)[i]);
  }
}

}  // namespace schemble
