#include "nn/kernels.h"

#include "common/hot_path.h"

#include <cmath>

#include "common/logging.h"

namespace schemble {
namespace kernels {

// The unrolled loops below intentionally use ONE accumulator: four
// independent partial sums would reassociate the reduction and break the
// bitwise-determinism contract in the header. The win is loop-overhead
// removal and wider scheduling windows, not SIMD reduction.

SCHEMBLE_HOT double Dot(const double* x, const double* y, int n) {
  double acc = 0.0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc += x[i] * y[i];
    acc += x[i + 1] * y[i + 1];
    acc += x[i + 2] * y[i + 2];
    acc += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

SCHEMBLE_HOT void Axpy(double a, const double* x, double* y, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i] += a * x[i];
    y[i + 1] += a * x[i + 1];
    y[i + 2] += a * x[i + 2];
    y[i + 3] += a * x[i + 3];
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

SCHEMBLE_HOT void Gemv(const double* a, int rows, int cols, const double* x,
                       double* y) {
  const double* row = a;
  for (int r = 0; r < rows; ++r, row += cols) {
    y[r] = Dot(row, x, cols);
  }
}

SCHEMBLE_HOT void GemvTransposed(const double* a, int rows, int cols,
                                 const double* x, double* y) {
  for (int c = 0; c < cols; ++c) y[c] = 0.0;
  const double* row = a;
  for (int r = 0; r < rows; ++r, row += cols) {
    Axpy(x[r], row, y, cols);
  }
}

SCHEMBLE_HOT double SquaredDistance(const double* a, const double* b, int n) {
  double acc = 0.0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    acc += d0 * d0;
    const double d1 = a[i + 1] - b[i + 1];
    acc += d1 * d1;
    const double d2 = a[i + 2] - b[i + 2];
    acc += d2 * d2;
    const double d3 = a[i + 3] - b[i + 3];
    acc += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

SCHEMBLE_HOT void MaskedSquaredDistances(const double* rows, int num_rows,
                                         int dim, const double* point_obs,
                                         const int* obs, int num_obs,
                                         double* out) {
  const double* row = rows;
  for (int r = 0; r < num_rows; ++r, row += dim) {
    double acc = 0.0;
    int t = 0;
    for (; t + 4 <= num_obs; t += 4) {
      const double d0 = row[obs[t]] - point_obs[t];
      acc += d0 * d0;
      const double d1 = row[obs[t + 1]] - point_obs[t + 1];
      acc += d1 * d1;
      const double d2 = row[obs[t + 2]] - point_obs[t + 2];
      acc += d2 * d2;
      const double d3 = row[obs[t + 3]] - point_obs[t + 3];
      acc += d3 * d3;
    }
    for (; t < num_obs; ++t) {
      const double d = row[obs[t]] - point_obs[t];
      acc += d * d;
    }
    out[r] = acc;
  }
}

SCHEMBLE_HOT void GatherAxpy(double a, const double* row, const int* idx,
                             int n, double* acc) {
  int t = 0;
  for (; t + 4 <= n; t += 4) {
    acc[t] += a * row[idx[t]];
    acc[t + 1] += a * row[idx[t + 1]];
    acc[t + 2] += a * row[idx[t + 2]];
    acc[t + 3] += a * row[idx[t + 3]];
  }
  for (; t < n; ++t) acc[t] += a * row[idx[t]];
}

SCHEMBLE_HOT double MaxValue(const double* x, int n) {
  SCHEMBLE_DCHECK(n >= 1);
  double best = x[0];
  for (int i = 1; i < n; ++i) {
    if (x[i] > best) best = x[i];
  }
  return best;
}

SCHEMBLE_HOT double LogSumExp(const double* x, int n) {
  const double shift = MaxValue(x, n);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += std::exp(x[i] - shift);
  return shift + std::log(sum);
}

SCHEMBLE_HOT void SoftmaxInPlace(double* x, int n) {
  SCHEMBLE_DCHECK(n >= 1);
  const double shift = MaxValue(x, n);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - shift);
    sum += x[i];
  }
  for (int i = 0; i < n; ++i) x[i] /= sum;
}

}  // namespace kernels
}  // namespace schemble
