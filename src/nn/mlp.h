#ifndef SCHEMBLE_NN_MLP_H_
#define SCHEMBLE_NN_MLP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "nn/matrix.h"

namespace schemble {

/// Hidden-layer activation functions supported by Mlp.
enum class Activation { kIdentity, kRelu, kTanh, kSigmoid };

double ApplyActivation(Activation act, double z);
/// Derivative expressed in terms of the activation output `a` (standard for
/// these functions; for ReLU it uses the sign of `a`).
double ActivationGradFromOutput(Activation act, double a);

struct MlpConfig {
  /// Layer widths including input and output, e.g. {16, 32, 3}.
  std::vector<int> layer_sizes;
  Activation hidden_activation = Activation::kRelu;
};

/// Per-layer gradients produced by Mlp::Backward; shaped like the weights.
struct MlpGradients {
  std::vector<Matrix> weight_grads;
  std::vector<std::vector<double>> bias_grads;

  /// Backprop scratch reused across examples (not part of the gradients;
  /// lets Backward run without heap allocation in steady state).
  std::vector<double> delta;
  std::vector<double> delta_prev;

  void Reset();
  void Scale(double s);
};

/// Intermediate activations kept by ForwardCached for backprop. Reused
/// across calls: the per-layer vectors keep their capacity, so repeated
/// ForwardCached calls on the same cache are allocation-free.
struct MlpForwardCache {
  /// activations[0] is the input; activations[L] the (linear) output.
  std::vector<std::vector<double>> activations;
};

/// Ping-pong buffers for allocation-free inference (ForwardInto).
struct MlpInferenceScratch {
  std::vector<double> a;
  std::vector<double> b;
};

/// Multi-layer perceptron with linear output layer. Small and allocation-
/// conscious rather than fast: this library's networks are the paper's
/// "lightweight" predictor networks (a few thousand parameters).
///
/// The class is copyable so callers can snapshot the best weights during
/// training.
class Mlp {
 public:
  Mlp(MlpConfig config, uint64_t seed);

  int input_dim() const { return config_.layer_sizes.front(); }
  int output_dim() const { return config_.layer_sizes.back(); }
  int num_layers() const { return static_cast<int>(weights_.size()); }
  size_t ParameterCount() const;

  /// Inference: raw (linear) outputs. Apply softmax/sigmoid at the call site
  /// as the task requires.
  std::vector<double> Forward(const std::vector<double>& x) const;

  /// Allocation-free inference: writes the (linear) outputs into `out`
  /// using the caller's ping-pong scratch. Bit-identical to Forward.
  /// `out` must be distinct from both scratch buffers.
  void ForwardInto(const std::vector<double>& x, MlpInferenceScratch* scratch,
                   std::vector<double>* out) const;

  /// Forward pass that records activations for Backward. Returns a
  /// reference into `cache` (valid until the next call on the same cache);
  /// allocation-free once the cache has warmed up.
  const std::vector<double>& ForwardCached(const std::vector<double>& x,
                                           MlpForwardCache* cache) const;

  /// Accumulates gradients for one example given dLoss/dOutput; `grads`
  /// must be shaped by InitGradients (or zeroed between batches via Reset).
  void Backward(const MlpForwardCache& cache,
                const std::vector<double>& dloss_doutput,
                MlpGradients* grads) const;

  MlpGradients InitGradients() const;

  /// SGD step: params -= lr * grads.
  void ApplySgd(const MlpGradients& grads, double lr);

  const std::vector<Matrix>& weights() const { return weights_; }
  const std::vector<std::vector<double>>& biases() const { return biases_; }
  Matrix& mutable_weight(int layer) { return weights_[layer]; }
  std::vector<double>& mutable_bias(int layer) { return biases_[layer]; }

 private:
  friend class AdamOptimizer;

  MlpConfig config_;
  std::vector<Matrix> weights_;
  std::vector<std::vector<double>> biases_;
};

/// Adam optimizer bound to one Mlp's parameter shapes.
class AdamOptimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
  };

  AdamOptimizer(const Mlp& mlp, Options options);

  /// Applies one Adam update from accumulated (mean) gradients.
  void Step(const MlpGradients& grads, Mlp* mlp);

  int64_t steps() const { return t_; }

 private:
  Options options_;
  int64_t t_ = 0;
  std::vector<Matrix> m_w_, v_w_;
  std::vector<std::vector<double>> m_b_, v_b_;
};

/// Loss callback: given network output and target, returns the loss value
/// and writes dLoss/dOutput into `grad` (resized by the callee).
using LossGradFn = std::function<double(const std::vector<double>& output,
                                        const std::vector<double>& target,
                                        std::vector<double>* grad)>;

/// Mean-squared-error loss over the full output vector.
double MseLossGrad(const std::vector<double>& output,
                   const std::vector<double>& target,
                   std::vector<double>* grad);

/// Softmax cross-entropy; `target` is a probability vector (often one-hot).
/// Gradient is softmax(output) - target.
double SoftmaxCrossEntropyLossGrad(const std::vector<double>& output,
                                   const std::vector<double>& target,
                                   std::vector<double>* grad);

/// One labelled training example.
struct TrainExample {
  std::vector<double> input;
  std::vector<double> target;
};

struct TrainerOptions {
  int batch_size = 32;
  int epochs = 20;
  AdamOptimizer::Options adam;
  /// When > 0, gradients with L2 norm above this are scaled down.
  double gradient_clip = 5.0;
};

/// Minibatch trainer; returns the mean training loss of the final epoch.
/// `rng` drives example shuffling only.
double TrainMlp(Mlp* mlp, const std::vector<TrainExample>& examples,
                const LossGradFn& loss, const TrainerOptions& options,
                Rng& rng);

}  // namespace schemble

#endif  // SCHEMBLE_NN_MLP_H_
