#ifndef SCHEMBLE_NN_KNN_H_
#define SCHEMBLE_NN_KNN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace schemble {

/// Brute-force k-nearest-neighbour index with support for *masked* queries:
/// distances are computed only over the observed coordinates. This is the
/// engine behind the paper's KNN missing-value filling (§VII): given the
/// outputs of the executed base models, find the k most similar historical
/// full-output records and fill the missing outputs with their
/// distance-weighted average.
///
/// Hot-path design (the serving runtime calls this on every partially
/// executed query):
///  - records live in ONE flat row-major buffer (no per-record vectors),
///    so the distance scan streams contiguous memory;
///  - masked squared distances are computed block-by-block into a reusable
///    workspace (kernels::MaskedSquaredDistances over a packed
///    observed-dimension list — the mask branch disappears);
///  - top-k selection keeps a bounded max-heap of k candidates instead of
///    materializing and partial_sort-ing all N of them;
///  - the *Into / *Batch entry points perform zero heap allocations once
///    the caller's workspace has warmed up (tracked by Workspace stats).
///
/// Ordering contract: neighbors are ranked by (squared distance, record
/// index) ascending, so distance ties break deterministically by index on
/// every platform. ReferenceKnnIndex implements the same contract with the
/// seed algorithm; the equivalence suite asserts bit-identical results.
class KnnIndex {
 public:
  /// Builds an index over `records`, all of equal non-zero dimension. The
  /// ragged input is validated and repacked into the flat row-major buffer
  /// (the input vectors are released; only the flat copy is kept).
  static Result<KnnIndex> Build(std::vector<std::vector<double>> records);

  struct Neighbor {
    int index = 0;
    double distance = 0.0;
  };

  /// Caller-owned scratch for the allocation-free entry points. Not
  /// thread-safe: use one Workspace per thread (the index itself is
  /// immutable after Build and safe to share).
  struct Workspace {
    /// Telemetry mirroring DpScheduler::WorkspaceStats: steady-state
    /// queries (same shape) must not add grow_events — the zero-allocation
    /// invariant the equivalence suite asserts.
    struct Stats {
      int64_t grow_events = 0;
      int64_t queries = 0;
    };

    std::vector<int> observed;    // packed dims with mask[d] == true
    std::vector<int> missing;     // packed dims with mask[d] == false
    std::vector<double> point_obs;  // query values at `observed`
    std::vector<double> dist;     // per-row squared distances (one block)
    std::vector<Neighbor> heap;   // bounded top-k max-heap, then sorted
    std::vector<double> accum;    // fill accumulator over `missing`
    Stats stats;
  };

  /// k nearest records over coordinates where mask[d] == true, sorted by
  /// (distance, index) ascending. Requires at least one observed
  /// coordinate and k > 0. Convenience wrapper that allocates.
  std::vector<Neighbor> Query(const std::vector<double>& point,
                              const std::vector<bool>& mask, int k) const;

  /// Allocation-free Query: neighbors are written into `out` (resized to
  /// min(k, size())).
  void QueryInto(const std::vector<double>& point,
                 const std::vector<bool>& mask, int k, Workspace* ws,
                 std::vector<Neighbor>* out) const;

  /// Fills coordinates where mask[d] == false with the inverse-distance
  /// weighted average of the k nearest records' values at d; observed
  /// coordinates are returned unchanged.
  std::vector<double> FillMissing(const std::vector<double>& point,
                                  const std::vector<bool>& mask, int k) const;

  /// Allocation-free FillMissing. `out` may alias `point` (in-place fill):
  /// distances are computed before anything is written, and only masked-out
  /// coordinates are overwritten.
  void FillMissingInto(const std::vector<double>& point,
                       const std::vector<bool>& mask, int k, Workspace* ws,
                       std::vector<double>* out) const;

  /// Batched Query over points sharing one mask (the profiling / replay
  /// shape: a fixed executed subset across a test set). The packed
  /// observed-dimension list is built once for the whole batch, amortizing
  /// per-query dispatch overhead. out->at(i) holds point i's neighbors.
  void QueryBatch(const std::vector<std::vector<double>>& points,
                  const std::vector<bool>& mask, int k, Workspace* ws,
                  std::vector<std::vector<Neighbor>>* out) const;

  /// Batched FillMissing over points sharing one mask; out->at(i) is the
  /// filled copy of points[i]. `out` may alias `points` (in-place batch
  /// fill). Zero steady-state allocations when the caller reuses `out`
  /// across batches.
  void FillMissingBatch(const std::vector<std::vector<double>>& points,
                        const std::vector<bool>& mask, int k, Workspace* ws,
                        std::vector<std::vector<double>>* out) const;

  int size() const { return num_records_; }
  int dim() const { return dim_; }
  /// Flat row-major record storage (tests verify Build's repacking).
  const double* row(int i) const {
    return data_.data() + static_cast<size_t>(i) * dim_;
  }

 private:
  KnnIndex(int num_records, int dim, std::vector<double> data)
      : num_records_(num_records), dim_(dim), data_(std::move(data)) {}

  /// Packs the mask into ws->observed / ws->missing and gathers the
  /// query-independent per-batch state. Returns false growths via stats.
  void PackMask(const std::vector<bool>& mask, Workspace* ws) const;
  /// Top-k scan of all records into ws->heap (sorted ascending on return).
  /// Requires PackMask and ws->point_obs to be current.
  void SelectTopK(int k, Workspace* ws) const;
  /// Shared fill core: assumes ws->heap holds the sorted neighbors.
  void FillFromNeighbors(const std::vector<double>& point, Workspace* ws,
                         std::vector<double>* out) const;

  int num_records_ = 0;
  int dim_ = 0;
  /// Row-major: record i's coordinates at data_[i * dim_ .. i * dim_ + dim_).
  std::vector<double> data_;
};

}  // namespace schemble

#endif  // SCHEMBLE_NN_KNN_H_
