#ifndef SCHEMBLE_NN_KNN_H_
#define SCHEMBLE_NN_KNN_H_

#include <vector>

#include "common/status.h"

namespace schemble {

/// Brute-force k-nearest-neighbour index with support for *masked* queries:
/// distances are computed only over the observed coordinates. This is the
/// engine behind the paper's KNN missing-value filling (§VII): given the
/// outputs of the executed base models, find the k most similar historical
/// full-output records and fill the missing outputs with their
/// distance-weighted average.
class KnnIndex {
 public:
  /// Builds an index over `records`, all of equal dimension.
  static Result<KnnIndex> Build(std::vector<std::vector<double>> records);

  struct Neighbor {
    int index = 0;
    double distance = 0.0;
  };

  /// k nearest records by Euclidean distance over coordinates where
  /// mask[d] == true. Requires at least one observed coordinate.
  std::vector<Neighbor> Query(const std::vector<double>& point,
                              const std::vector<bool>& mask, int k) const;

  /// Fills coordinates where mask[d] == false with the inverse-distance
  /// weighted average of the k nearest records' values at d; observed
  /// coordinates are returned unchanged.
  std::vector<double> FillMissing(const std::vector<double>& point,
                                  const std::vector<bool>& mask, int k) const;

  int size() const { return static_cast<int>(records_.size()); }
  int dim() const { return records_.empty() ? 0 : static_cast<int>(records_[0].size()); }

 private:
  explicit KnnIndex(std::vector<std::vector<double>> records)
      : records_(std::move(records)) {}

  std::vector<std::vector<double>> records_;
};

}  // namespace schemble

#endif  // SCHEMBLE_NN_KNN_H_
