#include "nn/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/prob.h"
#include "nn/kernels.h"

namespace schemble {

double ApplyActivation(Activation act, double z) {
  switch (act) {
    case Activation::kIdentity:
      return z;
    case Activation::kRelu:
      return z > 0.0 ? z : 0.0;
    case Activation::kTanh:
      return std::tanh(z);
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-z));
  }
  return z;
}

double ActivationGradFromOutput(Activation act, double a) {
  switch (act) {
    case Activation::kIdentity:
      return 1.0;
    case Activation::kRelu:
      return a > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh:
      return 1.0 - a * a;
    case Activation::kSigmoid:
      return a * (1.0 - a);
  }
  return 1.0;
}

void MlpGradients::Reset() {
  for (auto& w : weight_grads) w.Fill(0.0);
  for (auto& b : bias_grads) std::fill(b.begin(), b.end(), 0.0);
}

void MlpGradients::Scale(double s) {
  for (auto& w : weight_grads) {
    for (size_t i = 0; i < w.size(); ++i) w.data()[i] *= s;
  }
  for (auto& b : bias_grads) {
    for (double& v : b) v *= s;
  }
}

Mlp::Mlp(MlpConfig config, uint64_t seed) : config_(std::move(config)) {
  SCHEMBLE_CHECK_GE(config_.layer_sizes.size(), 2u);
  Rng rng(seed);
  const int layers = static_cast<int>(config_.layer_sizes.size()) - 1;
  weights_.reserve(layers);
  biases_.reserve(layers);
  for (int l = 0; l < layers; ++l) {
    const int in = config_.layer_sizes[l];
    const int out = config_.layer_sizes[l + 1];
    SCHEMBLE_CHECK_GT(in, 0);
    SCHEMBLE_CHECK_GT(out, 0);
    // He initialization keeps ReLU trunks well-scaled.
    const double stddev = std::sqrt(2.0 / in);
    weights_.push_back(Matrix::Randn(out, in, stddev, rng));
    biases_.emplace_back(out, 0.0);
  }
}

size_t Mlp::ParameterCount() const {
  size_t n = 0;
  for (const auto& w : weights_) n += w.size();
  for (const auto& b : biases_) n += b.size();
  return n;
}

std::vector<double> Mlp::Forward(const std::vector<double>& x) const {
  MlpInferenceScratch scratch;
  std::vector<double> out;
  ForwardInto(x, &scratch, &out);
  return out;
}

void Mlp::ForwardInto(const std::vector<double>& x,
                      MlpInferenceScratch* scratch,
                      std::vector<double>* out) const {
  SCHEMBLE_CHECK_EQ(static_cast<int>(x.size()), input_dim());
  SCHEMBLE_CHECK(scratch != nullptr);
  SCHEMBLE_CHECK(out != nullptr && out != &scratch->a && out != &scratch->b);
  const int layers = num_layers();
  const std::vector<double>* cur = &x;
  for (int l = 0; l < layers; ++l) {
    std::vector<double>* dst =
        (l + 1 == layers) ? out
                          : (cur == &scratch->a ? &scratch->b : &scratch->a);
    weights_[l].ApplyInto(*cur, dst);
    std::vector<double>& z = *dst;
    for (size_t i = 0; i < z.size(); ++i) z[i] += biases_[l][i];
    if (l + 1 < layers) {
      for (double& v : z) v = ApplyActivation(config_.hidden_activation, v);
    }
    cur = dst;
  }
}

const std::vector<double>& Mlp::ForwardCached(const std::vector<double>& x,
                                              MlpForwardCache* cache) const {
  SCHEMBLE_CHECK(cache != nullptr);
  SCHEMBLE_CHECK_EQ(static_cast<int>(x.size()), input_dim());
  const int layers = num_layers();
  cache->activations.resize(layers + 1);
  cache->activations[0].assign(x.begin(), x.end());
  for (int l = 0; l < layers; ++l) {
    std::vector<double>& z = cache->activations[l + 1];
    weights_[l].ApplyInto(cache->activations[l], &z);
    for (size_t i = 0; i < z.size(); ++i) z[i] += biases_[l][i];
    if (l + 1 < layers) {
      for (double& v : z) v = ApplyActivation(config_.hidden_activation, v);
    }
  }
  return cache->activations.back();
}

void Mlp::Backward(const MlpForwardCache& cache,
                   const std::vector<double>& dloss_doutput,
                   MlpGradients* grads) const {
  SCHEMBLE_CHECK(grads != nullptr);
  const int layers = num_layers();
  SCHEMBLE_CHECK_EQ(static_cast<int>(cache.activations.size()), layers + 1);
  std::vector<double>& delta = grads->delta;
  delta.assign(dloss_doutput.begin(), dloss_doutput.end());
  for (int l = layers - 1; l >= 0; --l) {
    // delta holds dLoss/dz_l (output layer is linear, so this starts as
    // dloss_doutput directly).
    grads->weight_grads[l].AddOuterProduct(delta, cache.activations[l]);
    for (size_t i = 0; i < delta.size(); ++i) grads->bias_grads[l][i] += delta[i];
    if (l > 0) {
      std::vector<double>& prev = grads->delta_prev;
      weights_[l].ApplyTransposedInto(delta, &prev);
      const std::vector<double>& a = cache.activations[l];
      for (size_t i = 0; i < prev.size(); ++i) {
        prev[i] *= ActivationGradFromOutput(config_.hidden_activation, a[i]);
      }
      std::swap(grads->delta, grads->delta_prev);
    }
  }
}

MlpGradients Mlp::InitGradients() const {
  MlpGradients g;
  for (const auto& w : weights_) g.weight_grads.emplace_back(w.rows(), w.cols());
  for (const auto& b : biases_) g.bias_grads.emplace_back(b.size(), 0.0);
  return g;
}

void Mlp::ApplySgd(const MlpGradients& grads, double lr) {
  for (int l = 0; l < num_layers(); ++l) {
    weights_[l].AddScaled(grads.weight_grads[l], -lr);
    for (size_t i = 0; i < biases_[l].size(); ++i) {
      biases_[l][i] -= lr * grads.bias_grads[l][i];
    }
  }
}

AdamOptimizer::AdamOptimizer(const Mlp& mlp, Options options)
    : options_(options) {
  for (const auto& w : mlp.weights_) {
    m_w_.emplace_back(w.rows(), w.cols());
    v_w_.emplace_back(w.rows(), w.cols());
  }
  for (const auto& b : mlp.biases_) {
    m_b_.emplace_back(b.size(), 0.0);
    v_b_.emplace_back(b.size(), 0.0);
  }
}

void AdamOptimizer::Step(const MlpGradients& grads, Mlp* mlp) {
  SCHEMBLE_CHECK(mlp != nullptr);
  ++t_;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const double lr = options_.learning_rate;

  for (size_t l = 0; l < m_w_.size(); ++l) {
    Matrix& w = mlp->weights_[l];
    const Matrix& g = grads.weight_grads[l];
    for (size_t i = 0; i < w.size(); ++i) {
      double gi = g.data()[i] + options_.weight_decay * w.data()[i];
      double& m = m_w_[l].data()[i];
      double& v = v_w_[l].data()[i];
      m = b1 * m + (1.0 - b1) * gi;
      v = b2 * v + (1.0 - b2) * gi * gi;
      const double mhat = m / bc1;
      const double vhat = v / bc2;
      w.data()[i] -= lr * mhat / (std::sqrt(vhat) + options_.epsilon);
    }
    std::vector<double>& b = mlp->biases_[l];
    const std::vector<double>& gb = grads.bias_grads[l];
    for (size_t i = 0; i < b.size(); ++i) {
      double& m = m_b_[l][i];
      double& v = v_b_[l][i];
      m = b1 * m + (1.0 - b1) * gb[i];
      v = b2 * v + (1.0 - b2) * gb[i] * gb[i];
      const double mhat = m / bc1;
      const double vhat = v / bc2;
      b[i] -= lr * mhat / (std::sqrt(vhat) + options_.epsilon);
    }
  }
}

double MseLossGrad(const std::vector<double>& output,
                   const std::vector<double>& target,
                   std::vector<double>* grad) {
  SCHEMBLE_CHECK_EQ(output.size(), target.size());
  grad->assign(output.size(), 0.0);
  double loss = 0.0;
  const double n = static_cast<double>(output.size());
  for (size_t i = 0; i < output.size(); ++i) {
    const double d = output[i] - target[i];
    loss += d * d;
    (*grad)[i] = 2.0 * d / n;
  }
  return loss / n;
}

double SoftmaxCrossEntropyLossGrad(const std::vector<double>& output,
                                   const std::vector<double>& target,
                                   std::vector<double>* grad) {
  SCHEMBLE_CHECK_EQ(output.size(), target.size());
  // Softmax computed in place inside `grad` (reusing its capacity), then
  // turned into softmax - target: the train-step hot path stays
  // allocation-free in steady state.
  grad->assign(output.begin(), output.end());
  kernels::SoftmaxInPlace(grad->data(), static_cast<int>(grad->size()));
  double loss = 0.0;
  for (size_t i = 0; i < output.size(); ++i) {
    const double p = (*grad)[i];
    if (target[i] > 0.0) loss -= target[i] * std::log(std::max(p, 1e-12));
    (*grad)[i] = p - target[i];
  }
  return loss;
}

double TrainMlp(Mlp* mlp, const std::vector<TrainExample>& examples,
                const LossGradFn& loss, const TrainerOptions& options,
                Rng& rng) {
  SCHEMBLE_CHECK(mlp != nullptr);
  SCHEMBLE_CHECK(!examples.empty());
  AdamOptimizer adam(*mlp, options.adam);
  MlpGradients grads = mlp->InitGradients();
  MlpForwardCache cache;
  std::vector<double> grad_out;
  double epoch_loss = 0.0;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<int> order = rng.Permutation(static_cast<int>(examples.size()));
    epoch_loss = 0.0;
    size_t cursor = 0;
    while (cursor < order.size()) {
      const size_t batch_end =
          std::min(cursor + static_cast<size_t>(options.batch_size),
                   order.size());
      grads.Reset();
      double batch_loss = 0.0;
      for (size_t i = cursor; i < batch_end; ++i) {
        const TrainExample& ex = examples[order[i]];
        const std::vector<double>& out = mlp->ForwardCached(ex.input, &cache);
        batch_loss += loss(out, ex.target, &grad_out);
        mlp->Backward(cache, grad_out, &grads);
      }
      const double inv = 1.0 / static_cast<double>(batch_end - cursor);
      grads.Scale(inv);
      if (options.gradient_clip > 0.0) {
        double norm_sq = 0.0;
        for (const auto& w : grads.weight_grads) {
          const double n = w.Norm();
          norm_sq += n * n;
        }
        for (const auto& b : grads.bias_grads) {
          for (double v : b) norm_sq += v * v;
        }
        const double norm = std::sqrt(norm_sq);
        if (norm > options.gradient_clip) {
          grads.Scale(options.gradient_clip / norm);
        }
      }
      adam.Step(grads, mlp);
      epoch_loss += batch_loss;
      cursor = batch_end;
    }
    epoch_loss /= static_cast<double>(examples.size());
  }
  return epoch_loss;
}

}  // namespace schemble
