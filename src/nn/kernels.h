#ifndef SCHEMBLE_NN_KERNELS_H_
#define SCHEMBLE_NN_KERNELS_H_

#include <cstdint>

namespace schemble {
namespace kernels {

/// Allocation-free numeric primitives over contiguous (row-major) memory.
///
/// Every kernel writes through out-parameters or in place and never touches
/// the heap, so the fill / training / aggregation hot paths built on top of
/// them can run with per-thread reusable workspaces and zero steady-state
/// allocations (the regime the serving runtime's completion path needs).
///
/// Determinism contract: all reductions accumulate strictly left-to-right
/// into a single accumulator. Inner loops are unrolled by hand (compile-time
/// trip count per unroll step) but never use multiple accumulators, so
/// results are bit-identical to the naive scalar loop on every platform the
/// repo pins with -ffp-contract=off. This is load-bearing: the golden
/// serving regression test and the KNN equivalence suite assert bitwise
/// equality against reference implementations.

/// Strictly-ordered dot product sum_i x[i] * y[i].
double Dot(const double* x, const double* y, int n);

/// y[i] += a * x[i].
void Axpy(double a, const double* x, double* y, int n);

/// y = A x for a row-major `a` of shape rows x cols. `y` must not alias
/// `a` or `x`.
void Gemv(const double* a, int rows, int cols, const double* x, double* y);

/// y = A^T x for a row-major `a` of shape rows x cols (y has cols entries).
/// Accumulates row-by-row (r outer), matching the historical
/// Matrix::ApplyTransposed order bit-for-bit. `y` must not alias inputs.
void GemvTransposed(const double* a, int rows, int cols, const double* x,
                    double* y);

/// Strictly-ordered squared Euclidean distance sum_i (a[i] - b[i])^2.
double SquaredDistance(const double* a, const double* b, int n);

/// Masked squared distances of `num_rows` consecutive row-major records
/// against one query point, observed coordinates only:
///   out[r] = sum_t (rows[r * dim + obs[t]] - point_obs[t])^2
/// `obs` lists the observed dimensions in ascending order and `point_obs`
/// holds the query's values at exactly those dimensions (pre-gathered so
/// the inner loop reads contiguously). Accumulation order matches the
/// seed's ascending-dimension scan, keeping distances bit-identical.
void MaskedSquaredDistances(const double* rows, int num_rows, int dim,
                            const double* point_obs, const int* obs,
                            int num_obs, double* out);

/// acc[t] += a * row[idx[t]] for t in [0, n): the gather-accumulate step of
/// distance-weighted KNN filling (one call per neighbor row keeps the
/// per-coordinate addition order identical to the seed's neighbor-major
/// sum).
void GatherAxpy(double a, const double* row, const int* idx, int n,
                double* acc);

/// Maximum element (n >= 1); strictly left-to-right, ties keep the first.
double MaxValue(const double* x, int n);

/// log(sum_i exp(x[i])) with max-shift stabilization (n >= 1).
double LogSumExp(const double* x, int n);

/// Numerically stable in-place softmax, identical operation order to
/// schemble::SoftmaxInPlace (max-shift, exp, single-pass sum, divide).
void SoftmaxInPlace(double* x, int n);

}  // namespace kernels
}  // namespace schemble

#endif  // SCHEMBLE_NN_KERNELS_H_
