#include "nn/calibration.h"

#include <cmath>

#include "common/logging.h"
#include "common/prob.h"
#include "common/stats.h"
#include "nn/kernels.h"

namespace schemble {

namespace {

/// In-place temperature softmax into a reusable buffer: bit-identical to
/// SoftmaxWithTemperature without the per-sample allocation (golden-section
/// fitting evaluates the NLL thousands of times).
void TemperatureSoftmaxInto(const std::vector<double>& logits,
                            double temperature, std::vector<double>* p) {
  p->assign(logits.begin(), logits.end());
  for (double& v : *p) v /= temperature;
  kernels::SoftmaxInPlace(p->data(), static_cast<int>(p->size()));
}

}  // namespace

double TemperatureScaler::MeanNll(
    const std::vector<std::vector<double>>& logits,
    const std::vector<int>& labels, double temperature) {
  SCHEMBLE_CHECK_EQ(logits.size(), labels.size());
  SCHEMBLE_CHECK(!logits.empty());
  SCHEMBLE_CHECK_GT(temperature, 0.0);
  double nll = 0.0;
  std::vector<double> p;
  for (size_t i = 0; i < logits.size(); ++i) {
    TemperatureSoftmaxInto(logits[i], temperature, &p);
    const int y = labels[i];
    SCHEMBLE_CHECK_GE(y, 0);
    SCHEMBLE_CHECK_LT(y, static_cast<int>(p.size()));
    nll -= std::log(std::max(p[y], 1e-12));
  }
  return nll / static_cast<double>(logits.size());
}

Result<TemperatureScaler> TemperatureScaler::Fit(
    const std::vector<std::vector<double>>& logits,
    const std::vector<int>& labels, double min_t, double max_t) {
  if (logits.empty() || logits.size() != labels.size()) {
    return Status::InvalidArgument(
        "temperature scaling needs matching, non-empty logits and labels");
  }
  if (min_t <= 0.0 || max_t <= min_t) {
    return Status::InvalidArgument("invalid temperature bounds");
  }
  // Golden-section search; NLL(T) is unimodal in practice.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = min_t;
  double b = max_t;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = MeanNll(logits, labels, c);
  double fd = MeanNll(logits, labels, d);
  for (int iter = 0; iter < 80 && (b - a) > 1e-4; ++iter) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = MeanNll(logits, labels, c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = MeanNll(logits, labels, d);
    }
  }
  return TemperatureScaler(0.5 * (a + b));
}

std::vector<double> TemperatureScaler::Calibrate(
    const std::vector<double>& logits) const {
  return SoftmaxWithTemperature(logits, temperature_);
}

double TemperatureScaler::ExpectedCalibrationError(
    const std::vector<std::vector<double>>& logits,
    const std::vector<int>& labels, double temperature, int bins) {
  SCHEMBLE_CHECK_EQ(logits.size(), labels.size());
  SCHEMBLE_CHECK_GT(bins, 0);
  std::vector<double> conf_sum(bins, 0.0);
  std::vector<double> acc_sum(bins, 0.0);
  std::vector<int64_t> counts(bins, 0);
  std::vector<double> p;
  for (size_t i = 0; i < logits.size(); ++i) {
    TemperatureSoftmaxInto(logits[i], temperature, &p);
    const int pred = Argmax(p);
    const double conf = p[pred];
    int bucket = static_cast<int>(conf * bins);
    if (bucket >= bins) bucket = bins - 1;
    conf_sum[bucket] += conf;
    acc_sum[bucket] += (pred == labels[i]) ? 1.0 : 0.0;
    ++counts[bucket];
  }
  double ece = 0.0;
  const double n = static_cast<double>(logits.size());
  for (int b = 0; b < bins; ++b) {
    if (counts[b] == 0) continue;
    const double avg_conf = conf_sum[b] / counts[b];
    const double avg_acc = acc_sum[b] / counts[b];
    ece += (counts[b] / n) * std::fabs(avg_conf - avg_acc);
  }
  return ece;
}

}  // namespace schemble
