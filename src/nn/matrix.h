#ifndef SCHEMBLE_NN_MATRIX_H_
#define SCHEMBLE_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace schemble {

/// Dense row-major matrix of doubles. This is the minimal numeric core the
/// neural-network substrate needs: the ensemble-serving workloads are small
/// (feature dims ~16-64, hidden dims ~32-128), so a straightforward
/// cache-friendly implementation is plenty.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0);

  /// Gaussian-initialized matrix (used for weight init; He-style scaling is
  /// applied by the caller via `stddev`).
  static Matrix Randn(int rows, int cols, double stddev, Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& at(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  double at(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// y = this * x  (matrix-vector product). Requires x.size() == cols().
  std::vector<double> Apply(const std::vector<double>& x) const;

  /// y = this^T * x (used by backprop). Requires x.size() == rows().
  std::vector<double> ApplyTransposed(const std::vector<double>& x) const;

  /// this += scale * (a outer b), where a has rows() entries and b cols().
  void AddOuterProduct(const std::vector<double>& a,
                       const std::vector<double>& b, double scale = 1.0);

  /// this += scale * other (same shape).
  void AddScaled(const Matrix& other, double scale);

  void Fill(double v);

  /// Frobenius norm.
  double Norm() const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

}  // namespace schemble

#endif  // SCHEMBLE_NN_MATRIX_H_
