#ifndef SCHEMBLE_NN_MATRIX_H_
#define SCHEMBLE_NN_MATRIX_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace schemble {

/// Dense row-major matrix of doubles. This is the minimal numeric core the
/// neural-network substrate needs: the ensemble-serving workloads are small
/// (feature dims ~16-64, hidden dims ~32-128), so a straightforward
/// cache-friendly implementation is plenty.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0);

  /// Gaussian-initialized matrix (used for weight init; He-style scaling is
  /// applied by the caller via `stddev`).
  static Matrix Randn(int rows, int cols, double stddev, Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& at(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  double at(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// y = this * x  (matrix-vector product). Requires x.size() == cols().
  std::vector<double> Apply(const std::vector<double>& x) const;

  /// y = this^T * x (used by backprop). Requires x.size() == rows().
  std::vector<double> ApplyTransposed(const std::vector<double>& x) const;

  /// Out-parameter variant of Apply: resizes `y` to rows() and overwrites
  /// it. Once `y` has reached capacity (steady state) no allocation occurs;
  /// capacity growths are counted in op_stats().grow_events so tests can
  /// assert the zero-allocation invariant. `y` must not alias `x`.
  void ApplyInto(const std::vector<double>& x, std::vector<double>* y) const;

  /// Out-parameter variant of ApplyTransposed (y resized to cols()).
  /// `y` must not alias `x`.
  void ApplyTransposedInto(const std::vector<double>& x,
                           std::vector<double>* y) const;

  /// Telemetry of the out-param fast paths, mirroring the scheduler's
  /// WorkspaceStats pattern: `grow_events` counts calls that had to grow
  /// the destination's capacity. Process-wide (atomic) because matrices are
  /// used from concurrent completion threads.
  struct OpStats {
    std::atomic<int64_t> grow_events{0};
    std::atomic<int64_t> apply_into_calls{0};
  };
  static OpStats& op_stats();

  /// this += scale * (a outer b), where a has rows() entries and b cols().
  void AddOuterProduct(const std::vector<double>& a,
                       const std::vector<double>& b, double scale = 1.0);

  /// this += scale * other (same shape).
  void AddScaled(const Matrix& other, double scale);

  void Fill(double v);

  /// Frobenius norm.
  double Norm() const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

}  // namespace schemble

#endif  // SCHEMBLE_NN_MATRIX_H_
