#include "stress/invariants.h"

#include <numeric>

namespace schemble {

void CheckServingInvariants(ScenarioContext& ctx,
                            const ServingMetrics& metrics,
                            const QueryTrace& trace,
                            const InvariantOptions& options) {
  // Conservation: every admitted query is finalized exactly once, so all
  // the independent tallies re-add to the same totals.
  ctx.ExpectEq(metrics.total, trace.size(), "metrics.total vs trace size");
  ctx.ExpectEq(metrics.processed + metrics.missed, metrics.total,
               "processed + missed");
  const int64_t size_count_total =
      std::accumulate(metrics.subset_size_counts.begin(),
                      metrics.subset_size_counts.end(), int64_t{0});
  ctx.ExpectEq(size_count_total, metrics.total, "subset size histogram sum");
  int64_t seg_arrivals = 0;
  int64_t seg_processed = 0;
  int64_t seg_missed = 0;
  for (const SegmentStats& seg : metrics.segments) {
    seg_arrivals += seg.arrivals;
    seg_processed += seg.processed;
    seg_missed += seg.missed;
  }
  ctx.ExpectEq(seg_arrivals, metrics.total, "segment arrivals sum");
  ctx.ExpectEq(seg_processed, metrics.processed, "segment processed sum");
  ctx.ExpectEq(seg_missed, metrics.missed, "segment missed sum");
  ctx.ExpectEq(metrics.latency_ms.count(), metrics.processed,
               "latency sample count");

  if (!options.allow_rejection) {
    // Force mode has no miss path: a dropped task (e.g. lost in a
    // fail-stop) would leave its query unfinalized and hang the run, and
    // a double dispatch trips the host CHECK — so completing with
    // processed == total is the strongest conservation statement.
    ctx.ExpectEq(metrics.missed, 0, "force-mode missed");
    ctx.ExpectEq(metrics.processed, metrics.total, "force-mode processed");
  }

  // Monotone metrics.
  if (metrics.latency_ms.count() > 0) {
    const double lo = metrics.latency_ms.min();
    const double hi = metrics.latency_ms.max();
    ctx.ExpectLeDouble(lo, metrics.latency_ms.mean(), "latency min vs mean");
    ctx.ExpectLeDouble(metrics.latency_ms.mean(), hi, "latency mean vs max");
    ctx.ExpectLeDouble(lo, metrics.latency_ms.Quantile(0.5),
                       "latency min vs p50");
    ctx.ExpectLeDouble(metrics.latency_ms.Quantile(0.5),
                       metrics.latency_ms.Quantile(0.95),
                       "latency p50 vs p95");
    ctx.ExpectLeDouble(metrics.latency_ms.Quantile(0.95), hi,
                       "latency p95 vs max");
    ctx.ExpectLeDouble(0.0, lo, "latency non-negative");
  }
  ctx.ExpectLeDouble(0.0, metrics.accuracy_sum, "accuracy sum non-negative");
  ctx.ExpectLeDouble(metrics.accuracy_sum,
                     static_cast<double>(metrics.total) + 1e-9,
                     "accuracy sum vs total");
  ctx.ExpectLeDouble(metrics.processed_accuracy_sum,
                     static_cast<double>(metrics.processed) + 1e-9,
                     "processed accuracy sum vs processed");

  // No-starvation proxy (rejection mode): the deadline thread finalizes
  // every overdue query near its deadline, so no finalized latency can
  // wildly exceed the largest relative deadline. The 2x + 2s allowance
  // absorbs virtual-time lag on an oversubscribed host without masking an
  // actually-starved deadline heap (which diverges with trace length).
  if (options.allow_rejection && options.max_relative_deadline > 0 &&
      metrics.latency_ms.count() > 0) {
    const double bound_ms =
        2.0 * static_cast<double>(options.max_relative_deadline) / 1000.0 +
        2000.0;
    ctx.ExpectLeDouble(metrics.latency_ms.max(), bound_ms,
                       "max latency vs deadline starvation bound");
  }
}

void CheckSchedulerCounters(
    ScenarioContext& ctx,
    const ConcurrentServer::SchedulerStatsSnapshot& sched) {
  ctx.ExpectGe(sched.failstops, 0, "failstops");
  ctx.ExpectGe(sched.requeues, 0, "requeues");
  ctx.ExpectGe(sched.stale_tasks_dropped, 0, "stale_tasks_dropped");
  ctx.ExpectGe(sched.steals, 0, "steals");
  ctx.ExpectGe(sched.stolen, sched.steals, "stolen vs steal rounds");
  ctx.ExpectGe(sched.donated, sched.rebalances, "donated vs rebalances");
  ctx.Note("counters: failstops=" + std::to_string(sched.failstops) +
           " requeues=" + std::to_string(sched.requeues) +
           " stale_tasks_dropped=" +
           std::to_string(sched.stale_tasks_dropped) +
           " steals=" + std::to_string(sched.steals) +
           " stolen=" + std::to_string(sched.stolen) +
           " rebalances=" + std::to_string(sched.rebalances) +
           " donated=" + std::to_string(sched.donated) +
           " plans=" + std::to_string(sched.plans) +
           " plan_commits=" + std::to_string(sched.plan_commits) +
           " plans_invalidated=" + std::to_string(sched.plans_invalidated));
}

}  // namespace schemble
