// schemble_stress: the randomized stress-scenario runner (DESIGN.md
// "Randomized stress harness").
//
//   schemble_stress --list                      # registered scenarios
//   schemble_stress [--scenario=NAME] [--seed=N] [--runs=K] [--dump-events]
//
// Without --scenario every registered scenario runs; without --seed a
// fresh time-derived seed is drawn (and printed — every run is replayable
// from its printed command line). Run i of K uses seed + i. The replay
// command is printed BEFORE the run starts, so even a CHECK-abort inside
// the runtime leaves the reproduction recipe on stdout.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "stress/scenario.h"

namespace schemble {
namespace {

struct Args {
  std::string scenario;  // empty = all
  uint64_t seed = 0;
  bool seed_set = false;
  int runs = 1;
  bool list = false;
  bool dump_events = false;
  bool ok = true;
};

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* flag) -> const char* {
      const size_t len = std::strlen(flag);
      if (arg.compare(0, len, flag) == 0 && arg.size() > len &&
          arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (arg == "--list") {
      args.list = true;
    } else if (arg == "--dump-events") {
      args.dump_events = true;
    } else if (const char* scenario = value_of("--scenario")) {
      args.scenario = scenario;
    } else if (const char* seed = value_of("--seed")) {
      args.seed = std::strtoull(seed, nullptr, 0);
      args.seed_set = true;
    } else if (const char* runs = value_of("--runs")) {
      args.runs = std::atoi(runs);
      if (args.runs < 1) args.ok = false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      args.ok = false;
    }
  }
  return args;
}

/// The nightly-fuzz default: a fresh seed per invocation, derived from the
/// wall clock. This is the ONLY non-reproducible input in the binary, and
/// it is immediately printed so the run becomes reproducible.
uint64_t TimeDerivedSeed() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

int Main(int argc, char** argv) {
  RegisterBuiltinScenarios();
  const Args args = Parse(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr,
                 "usage: schemble_stress [--list] [--scenario=NAME] "
                 "[--seed=N] [--runs=K] [--dump-events]\n");
    return 2;
  }
  const ScenarioRegistry& registry = ScenarioRegistry::Instance();
  if (args.list) {
    for (const Scenario& scenario : registry.scenarios()) {
      std::printf("%-24s %s\n", scenario.name.c_str(),
                  scenario.description.c_str());
    }
    return 0;
  }

  std::vector<const Scenario*> selected;
  if (args.scenario.empty()) {
    for (const Scenario& scenario : registry.scenarios()) {
      selected.push_back(&scenario);
    }
  } else {
    const Scenario* scenario = registry.Find(args.scenario);
    if (scenario == nullptr) {
      std::fprintf(stderr, "unknown scenario: %s (see --list)\n",
                   args.scenario.c_str());
      return 2;
    }
    selected.push_back(scenario);
  }

  const uint64_t base_seed = args.seed_set ? args.seed : TimeDerivedSeed();
  if (!args.seed_set) {
    std::printf("no --seed given; using time-derived seed %llu\n",
                static_cast<unsigned long long>(base_seed));
  }

  int failures = 0;
  for (const Scenario* scenario : selected) {
    for (int run = 0; run < args.runs; ++run) {
      const uint64_t seed = base_seed + static_cast<uint64_t>(run);
      std::printf("=== %s seed %llu (run %d/%d)\n", scenario->name.c_str(),
                  static_cast<unsigned long long>(seed), run + 1, args.runs);
      // Before the run, and flushed: a CHECK-abort inside the runtime must
      // not eat the reproduction recipe.
      std::printf("replay: schemble_stress --scenario=%s --seed=%llu\n",
                  scenario->name.c_str(),
                  static_cast<unsigned long long>(seed));
      std::fflush(stdout);

      const ScenarioContext ctx = RunScenario(*scenario, seed);

      if (args.dump_events || ctx.failed()) {
        for (const std::string& event : ctx.events()) {
          std::printf("  event: %s\n", event.c_str());
        }
      }
      for (const std::string& note : ctx.notes()) {
        std::printf("  note: %s\n", note.c_str());
      }
      for (const std::string& failure : ctx.failures()) {
        std::printf("  FAILED: %s\n", failure.c_str());
      }
      std::printf("%s: %s seed %llu\n", ctx.failed() ? "FAIL" : "PASS",
                  scenario->name.c_str(),
                  static_cast<unsigned long long>(seed));
      std::fflush(stdout);
      if (ctx.failed()) ++failures;
    }
  }
  if (failures > 0) {
    std::printf("%d scenario run(s) failed\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace schemble

int main(int argc, char** argv) { return schemble::Main(argc, argv); }
