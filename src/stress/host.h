#ifndef SCHEMBLE_STRESS_HOST_H_
#define SCHEMBLE_STRESS_HOST_H_

#include <string>
#include <thread>

namespace schemble {

/// Why a load-sensitive test should be skipped on this host, or the empty
/// string to run it. The runtime's timing assertions (throughput ratios,
/// "the scheduler drained the buffer", stress-matrix deadline bounds)
/// assume the admission/scheduler/deadline/worker threads actually get to
/// run concurrently; on the 2-core CI containers they time-slice instead
/// and the assertions measure the host, not the code. Usage:
///
///   if (const std::string reason = LoadSensitiveSkipReason();
///       !reason.empty()) {
///     GTEST_SKIP() << reason;
///   }
///
/// The guard only ever SKIPS (with a logged reason) — it never loosens an
/// assertion, so on an adequate host the full check always runs.
inline std::string LoadSensitiveSkipReason(unsigned min_cores = 4) {
  const unsigned cores = std::thread::hardware_concurrency();
  // 0 means "unknown": assume an adequate host rather than silently
  // skipping coverage everywhere.
  if (cores != 0 && cores < min_cores) {
    return "load-sensitive test skipped: hardware_concurrency() = " +
           std::to_string(cores) + " < " + std::to_string(min_cores) +
           " (thread timing assertions are unreliable on tiny hosts)";
  }
  return std::string();
}

}  // namespace schemble

#endif  // SCHEMBLE_STRESS_HOST_H_
