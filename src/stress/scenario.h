#ifndef SCHEMBLE_STRESS_SCENARIO_H_
#define SCHEMBLE_STRESS_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stress/lcg.h"

namespace schemble {

/// Per-run state handed to a scenario function: the seeded LCG plus three
/// output channels with different determinism contracts.
///
///  - events:   the REPLAY LOG. Every randomized draw and every derived
///              configuration decision lands here, and nothing
///              timing-dependent ever does — two runs with the same seed
///              must produce byte-identical event logs (the acceptance
///              criterion the fixed-seed tests and the nightly fuzz lane
///              both check).
///  - notes:    free-form observations (throughput, counter values, wall
///              times). Allowed to vary between replays; never compared.
///  - failures: violated expectations. WHICH expectation fails is
///              deterministic for timing-independent invariants; the
///              message may embed measured values, so failures live
///              outside the event log.
class ScenarioContext {
 public:
  explicit ScenarioContext(uint64_t seed) : seed_(seed), rng_(seed) {}

  uint64_t seed() const { return seed_; }
  Lcg& rng() { return rng_; }

  /// Randomized draws, each appended to the event log as
  /// "draw <name> = <value> in [<lo>, <hi>]".
  int DrawInt(const std::string& name, int lo, int hi);
  double DrawDouble(const std::string& name, double lo, double hi);
  bool DrawChance(const std::string& name, double p);
  /// Derived sub-seed (trace/task/server seeds); logged in hex.
  uint64_t DrawSeed(const std::string& name);

  /// Deterministic configuration event (must be a pure function of prior
  /// draws): "fault executor 3 fail_at=2400000".
  void Event(std::string line) { events_.push_back(std::move(line)); }
  /// Timing-dependent observation; excluded from replay comparison.
  void Note(std::string line) { notes_.push_back(std::move(line)); }
  /// Records an invariant violation; the run fails but keeps checking.
  void Fail(std::string line) { failures_.push_back(std::move(line)); }

  /// Expectation helpers in the gtest spirit, recording through Fail().
  void ExpectTrue(bool condition, const std::string& what);
  void ExpectEq(int64_t actual, int64_t expected, const std::string& what);
  void ExpectGe(int64_t actual, int64_t bound, const std::string& what);
  void ExpectLeDouble(double actual, double bound, const std::string& what);

  bool failed() const { return !failures_.empty(); }
  const std::vector<std::string>& events() const { return events_; }
  const std::vector<std::string>& notes() const { return notes_; }
  const std::vector<std::string>& failures() const { return failures_; }

 private:
  const uint64_t seed_;
  Lcg rng_;
  std::vector<std::string> events_;
  std::vector<std::string> notes_;
  std::vector<std::string> failures_;
};

/// Shortest-round-trip decimal formatting for doubles (%.17g): the same
/// value always formats to the same bytes, which keeps drawn doubles safe
/// to embed in the replay log.
std::string FormatDouble(double value);

using ScenarioFn = void (*)(ScenarioContext&);

/// A named randomized scenario in the MathGeoLib TestRunner style: the
/// function draws its whole configuration from ctx.rng() and asserts
/// invariants through ctx expectations.
struct Scenario {
  std::string name;
  std::string description;
  ScenarioFn fn = nullptr;
};

/// Process-wide scenario registry. Registration happens through explicit
/// RegisterBuiltinScenarios() (idempotent) rather than static initializers
/// so the binary and the tests control when the list is built.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& Instance();

  void Register(Scenario scenario);
  /// Scenario by name; nullptr when unknown.
  const Scenario* Find(const std::string& name) const;
  const std::vector<Scenario>& scenarios() const { return scenarios_; }

 private:
  std::vector<Scenario> scenarios_;
};

/// Registers the built-in scenario fleet (heterogeneous speeds,
/// stragglers, fail-stop recovery, multi-tenant deadlines, bursty overlay,
/// sharded chaos). Safe to call more than once.
void RegisterBuiltinScenarios();

/// Runs one scenario with one seed, returning the populated context.
/// Prints nothing — callers (the binary, the ctest matrix) own reporting.
ScenarioContext RunScenario(const Scenario& scenario, uint64_t seed);

}  // namespace schemble

#endif  // SCHEMBLE_STRESS_SCENARIO_H_
