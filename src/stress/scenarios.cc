#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/original_policy.h"
#include "core/discrepancy.h"
#include "core/schemble_policy.h"
#include "models/task_factory.h"
#include "runtime/concurrent_server.h"
#include "stress/invariants.h"
#include "stress/scenario.h"
#include "workload/trace.h"
#include "workload/traffic.h"

namespace schemble {
namespace {

/// Virtual microseconds per real microsecond for every scenario run: a
/// 10-virtual-second trace replays in ~0.1 real seconds. Timing-only — the
/// replay log never depends on it.
constexpr double kSpeedup = 100.0;

/// Everything a Schemble-oracle scenario needs to mint policy instances:
/// the task, a profiling dataset, the fitted scorer and the accuracy
/// profile. All of it is a pure function of `task_seed`, so two replays
/// build byte-identical policies.
struct OracleBundle {
  explicit OracleBundle(uint64_t task_seed)
      : task(MakeTextMatchingTask(task_seed)),
        history(task.GenerateDataset(
            2000, DifficultyDistribution::UniformFull(), 5)) {
    auto fitted = DiscrepancyScorer::Fit(task, history);
    SCHEMBLE_CHECK(fitted.ok());
    scorer = std::make_unique<DiscrepancyScorer>(std::move(fitted).value());
    auto built =
        AccuracyProfile::Build(task, history, scorer->ScoreAll(history));
    SCHEMBLE_CHECK(built.ok());
    profile = std::make_unique<AccuracyProfile>(std::move(built).value());
  }

  SchemblePolicy MakePolicy() const {
    SchembleConfig config;
    config.score_source = ScoreSource::kOracle;
    return SchemblePolicy(task, *profile, nullptr, scorer.get(),
                          std::move(config));
  }

  SyntheticTask task;
  std::vector<Query> history;
  std::unique_ptr<DiscrepancyScorer> scorer;
  std::unique_ptr<AccuracyProfile> profile;
};

/// `replicas` executors per base model, in model-major order (the order
/// ConcurrentServer partitions round-robin across domains).
std::vector<int> ReplicatedExecutors(const SyntheticTask& task,
                                     int replicas) {
  std::vector<int> models;
  for (int k = 0; k < task.num_models(); ++k) {
    models.insert(models.end(), static_cast<size_t>(replicas), k);
  }
  return models;
}

QueryTrace MakePoissonTrace(const SyntheticTask& task, double rate,
                            SimTime duration, SimTime deadline,
                            uint64_t seed, int num_sources = 1,
                            int64_t first_query_id = 1000000) {
  PoissonTraffic traffic(rate);
  ConstantDeadline deadlines(deadline);
  TraceOptions options;
  options.seed = seed;
  options.num_sources = num_sources;
  options.first_query_id = first_query_id;
  return BuildTrace(task, traffic, deadlines, duration, options);
}

/// Heterogeneous fleets: every executor draws an independent speed
/// multiplier, so the projected-availability placement and the policies
/// face persistently unequal replicas. Force mode makes conservation
/// strict: every query must complete despite the imbalance.
void HeterogeneousSpeeds(ScenarioContext& ctx) {
  const uint64_t task_seed = ctx.DrawSeed("task_seed");
  const SyntheticTask task = MakeTextMatchingTask(task_seed);
  const int replicas = ctx.DrawInt("replicas_per_model", 2, 3);

  ConcurrentServerOptions options;
  options.executor_models = ReplicatedExecutors(task, replicas);
  options.allow_rejection = false;
  options.speedup = kSpeedup;
  options.seed = ctx.DrawSeed("server_seed");
  for (size_t e = 0; e < options.executor_models.size(); ++e) {
    ExecutorFault fault;
    fault.speed =
        ctx.DrawDouble("speed_executor_" + std::to_string(e), 0.5, 2.0);
    options.executor_faults.push_back(fault);
  }

  const double rate = ctx.DrawDouble("rate_qps", 10.0, 25.0);
  const int duration_s = ctx.DrawInt("duration_s", 6, 10);
  const QueryTrace trace =
      MakePoissonTrace(task, rate, duration_s * kSecond, 60 * kSecond,
                       ctx.DrawSeed("trace_seed"));
  ctx.Event("trace queries = " + std::to_string(trace.size()));

  OriginalPolicy policy;
  ConcurrentServer server(task, &policy, options);
  const ServingMetrics metrics = server.Run(trace);

  InvariantOptions inv;
  inv.allow_rejection = false;
  CheckServingInvariants(ctx, metrics, trace, inv);
  CheckSchedulerCounters(ctx, server.scheduler_stats());
  const auto sched = server.scheduler_stats();
  ctx.ExpectEq(sched.failstops, 0, "failstops (none injected)");
  ctx.Note("mean latency ms = " + FormatDouble(metrics.mean_latency_ms()));
}

/// Straggler injection under a diurnal day shape: a random subset of
/// executors starts inflating service times mid-trace while the Schemble
/// planner keeps scheduling against deadlines.
void StragglersDiurnal(ScenarioContext& ctx) {
  const OracleBundle bundle(ctx.DrawSeed("task_seed"));
  const SyntheticTask& task = bundle.task;

  ConcurrentServerOptions options;
  options.executor_models = ReplicatedExecutors(task, 2);
  options.speedup = kSpeedup;
  options.seed = ctx.DrawSeed("server_seed");
  const double peak = ctx.DrawDouble("peak_rate_qps", 40.0, 80.0);
  DiurnalTraffic traffic =
      DiurnalTraffic::QaDayShape(peak, /*segment_duration=*/500 *
                                           kMillisecond);
  const SimTime duration = traffic.total_duration();
  int stragglers = 0;
  for (size_t e = 0; e < options.executor_models.size(); ++e) {
    ExecutorFault fault;
    if (ctx.DrawChance("straggle_executor_" + std::to_string(e), 0.5)) {
      const int onset_pct =
          ctx.DrawInt("straggle_onset_pct_" + std::to_string(e), 20, 50);
      fault.straggle_after = duration * onset_pct / 100;
      fault.straggle_factor = ctx.DrawDouble(
          "straggle_factor_" + std::to_string(e), 1.5, 3.0);
      ++stragglers;
    }
    options.executor_faults.push_back(fault);
  }
  ctx.Event("stragglers = " + std::to_string(stragglers));

  const SimTime deadline = ctx.DrawInt("deadline_ms", 2000, 5000) *
                           kMillisecond;
  ConstantDeadline deadlines(deadline);
  TraceOptions trace_options;
  trace_options.seed = ctx.DrawSeed("trace_seed");
  const QueryTrace trace =
      BuildTrace(task, traffic, deadlines, duration, trace_options);
  ctx.Event("trace queries = " + std::to_string(trace.size()));

  SchemblePolicy policy = bundle.MakePolicy();
  ConcurrentServer server(task, &policy, options);
  const ServingMetrics metrics = server.Run(trace);

  InvariantOptions inv;
  inv.max_relative_deadline = deadline;
  CheckServingInvariants(ctx, metrics, trace, inv);
  CheckSchedulerCounters(ctx, server.scheduler_stats());
  ctx.Note("miss rate = " + FormatDouble(metrics.deadline_miss_rate()));
}

/// The fail-stop recovery scenario (the tentpole's conservation proof):
/// one executor dies mid-trace, its in-flight and queued tasks are
/// re-queued through the domain inbox, and force mode demands that every
/// query still completes exactly once. This is the scenario the
/// replay-bit-identity acceptance check drives.
void FailStopRecovery(ScenarioContext& ctx) {
  const uint64_t task_seed = ctx.DrawSeed("task_seed");
  const SyntheticTask task = MakeTextMatchingTask(task_seed);

  ConcurrentServerOptions options;
  options.executor_models = ReplicatedExecutors(task, 2);
  options.allow_rejection = false;
  options.speedup = kSpeedup;
  options.seed = ctx.DrawSeed("server_seed");
  const double rate = ctx.DrawDouble("rate_qps", 15.0, 40.0);
  const int duration_s = ctx.DrawInt("duration_s", 6, 10);
  const SimTime duration = duration_s * kSecond;
  // Exactly one victim: its model keeps a live replica, so dispatch always
  // has somewhere to place re-queued work.
  const int victim = ctx.DrawInt(
      "victim_executor", 0,
      static_cast<int>(options.executor_models.size()) - 1);
  const int fail_pct = ctx.DrawInt("fail_at_pct", 30, 60);
  options.executor_faults.assign(options.executor_models.size(),
                                 ExecutorFault{});
  options.executor_faults[static_cast<size_t>(victim)].fail_at =
      duration * fail_pct / 100;
  ctx.Event("fault executor " + std::to_string(victim) + " fail_at=" +
            std::to_string(duration * fail_pct / 100));

  const QueryTrace trace = MakePoissonTrace(
      task, rate, duration, 60 * kSecond, ctx.DrawSeed("trace_seed"));
  ctx.Event("trace queries = " + std::to_string(trace.size()));

  OriginalPolicy policy;
  ConcurrentServer server(task, &policy, options);
  const ServingMetrics metrics = server.Run(trace);

  InvariantOptions inv;
  inv.allow_rejection = false;
  CheckServingInvariants(ctx, metrics, trace, inv);
  const auto sched = server.scheduler_stats();
  CheckSchedulerCounters(ctx, sched);
  // The victim examines a steady stream of tasks (Original fans every
  // query to every model), so it deterministically dies — and its backlog
  // always contains at least the task that triggered the failure, so at
  // least one query flows back through the re-queue path.
  ctx.ExpectEq(sched.failstops, 1, "failstops");
  ctx.ExpectGe(sched.requeues, 1, "requeues after fail-stop");
  ctx.Note("requeues = " + std::to_string(sched.requeues) +
           ", stale drops = " + std::to_string(sched.stale_tasks_dropped));
}

/// Cross-query batching under fail-stop: randomized batch latency profiles
/// (base fraction, coalescing factor, per-model cap) on an overloaded
/// deployment with batching on, one executor fail-stopping mid-run. The
/// coalescing drain must conserve every query — each re-queued or
/// completed exactly once, per task generation — and must actually batch
/// under the backlog.
void BatchedCoalescing(ScenarioContext& ctx) {
  const uint64_t task_seed = ctx.DrawSeed("task_seed");
  const SyntheticTask base_task = MakeTextMatchingTask(task_seed);
  std::vector<ModelProfile> profiles = base_task.profiles();
  for (size_t k = 0; k < profiles.size(); ++k) {
    const std::string tag = std::to_string(k);
    profiles[k].batch_base_fraction =
        ctx.DrawDouble("batch_base_fraction_" + tag, 0.1, 0.7);
    profiles[k].batch_coalescing =
        ctx.DrawDouble("batch_coalescing_" + tag, 0.1, 0.8);
    profiles[k].max_batch = ctx.DrawInt("max_batch_" + tag, 2, 16);
  }
  const SyntheticTask task(base_task.spec(), std::move(profiles), task_seed);

  ConcurrentServerOptions options;
  options.executor_models = ReplicatedExecutors(task, 2);
  options.allow_rejection = false;
  options.speedup = kSpeedup;
  options.seed = ctx.DrawSeed("server_seed");
  options.batching = true;
  // Half the runs also cap the batch size server-side, exercising the
  // min(profile cap, server cap) composition.
  if (ctx.DrawChance("cap_batches", 0.5)) {
    options.max_batch = ctx.DrawInt("server_max_batch", 2, 8);
  }

  const double rate = ctx.DrawDouble("rate_qps", 25.0, 60.0);
  const int duration_s = ctx.DrawInt("duration_s", 5, 8);
  const SimTime duration = duration_s * kSecond;
  // Exactly one victim: its model keeps a live replica, so dispatch always
  // has somewhere to place re-queued work.
  const int victim = ctx.DrawInt(
      "victim_executor", 0,
      static_cast<int>(options.executor_models.size()) - 1);
  const int fail_pct = ctx.DrawInt("fail_at_pct", 30, 60);
  options.executor_faults.assign(options.executor_models.size(),
                                 ExecutorFault{});
  options.executor_faults[static_cast<size_t>(victim)].fail_at =
      duration * fail_pct / 100;
  ctx.Event("fault executor " + std::to_string(victim) + " fail_at=" +
            std::to_string(duration * fail_pct / 100));

  const QueryTrace trace = MakePoissonTrace(
      task, rate, duration, 60 * kSecond, ctx.DrawSeed("trace_seed"));
  ctx.Event("trace queries = " + std::to_string(trace.size()));

  OriginalPolicy policy;
  ConcurrentServer server(task, &policy, options);
  const ServingMetrics metrics = server.Run(trace);

  InvariantOptions inv;
  inv.allow_rejection = false;
  CheckServingInvariants(ctx, metrics, trace, inv);
  const auto sched = server.scheduler_stats();
  CheckSchedulerCounters(ctx, sched);
  ctx.ExpectEq(sched.failstops, 1, "failstops");
  ctx.ExpectGe(sched.requeues, 1, "requeues after fail-stop");
  // Original fans every query to every model against well under the needed
  // capacity, so queues run deep and the workers must actually coalesce
  // (every profile allows batches of at least 2).
  ctx.ExpectGe(sched.batches_executed, 1, "batched executions");
  ctx.ExpectGe(sched.tasks_batched, sched.batches_executed + 1,
               "coalescing under backlog");
  ctx.Note("requeues = " + std::to_string(sched.requeues) +
           ", stale drops = " + std::to_string(sched.stale_tasks_dropped) +
           ", occupancy = " +
           FormatDouble(static_cast<double>(sched.tasks_batched) /
                        static_cast<double>(sched.batches_executed)));
}

/// Multi-tenant traces: several sources (priority classes), each with its
/// own uniformly drawn relative deadline, sharing one serving fleet under
/// rejection — the per-source deadline heap pressure test.
void MultiTenantPriorities(ScenarioContext& ctx) {
  const OracleBundle bundle(ctx.DrawSeed("task_seed"));
  const SyntheticTask& task = bundle.task;

  ConcurrentServerOptions options;
  options.executor_models = ReplicatedExecutors(task, 2);
  options.speedup = kSpeedup;
  options.seed = ctx.DrawSeed("server_seed");

  const int num_sources = ctx.DrawInt("num_tenants", 3, 8);
  const int hi_ms = ctx.DrawInt("deadline_hi_ms", 3000, 6000);
  const SimTime deadline_lo = 1000 * kMillisecond;
  const SimTime deadline_hi = hi_ms * kMillisecond;
  PerSourceUniformDeadline deadlines(num_sources, deadline_lo, deadline_hi,
                                     ctx.DrawSeed("deadline_seed"));
  for (int s = 0; s < num_sources; ++s) {
    ctx.Event("tenant " + std::to_string(s) + " deadline = " +
              std::to_string(deadlines.deadline_of(s)));
  }

  const double rate = ctx.DrawDouble("rate_qps", 30.0, 60.0);
  const int duration_s = ctx.DrawInt("duration_s", 6, 10);
  PoissonTraffic traffic(rate);
  TraceOptions trace_options;
  trace_options.seed = ctx.DrawSeed("trace_seed");
  trace_options.num_sources = num_sources;
  const QueryTrace trace = BuildTrace(task, traffic, deadlines,
                                      duration_s * kSecond, trace_options);
  ctx.Event("trace queries = " + std::to_string(trace.size()));

  SchemblePolicy policy = bundle.MakePolicy();
  ConcurrentServer server(task, &policy, options);
  const ServingMetrics metrics = server.Run(trace);

  InvariantOptions inv;
  inv.max_relative_deadline = deadline_hi;
  CheckServingInvariants(ctx, metrics, trace, inv);
  CheckSchedulerCounters(ctx, server.scheduler_stats());
  ctx.Note("miss rate = " + FormatDouble(metrics.deadline_miss_rate()));
}

/// Bursty overlay: a steady Poisson floor merged with a diurnal burst
/// (disjoint query-id ranges), replayed into a two-domain sharded server
/// with deliberately tiny executor queues so the steal/donate paths fire.
void BurstyOverlay(ScenarioContext& ctx) {
  const uint64_t task_seed = ctx.DrawSeed("task_seed");
  const SyntheticTask task = MakeTextMatchingTask(task_seed);

  const double floor_rate = ctx.DrawDouble("floor_rate_qps", 5.0, 15.0);
  const double burst_peak = ctx.DrawDouble("burst_peak_qps", 40.0, 80.0);
  DiurnalTraffic burst = DiurnalTraffic::QaDayShape(
      burst_peak, /*segment_duration=*/400 * kMillisecond);
  const SimTime duration = burst.total_duration();

  QueryTrace trace = MakePoissonTrace(task, floor_rate, duration,
                                      60 * kSecond,
                                      ctx.DrawSeed("floor_trace_seed"),
                                      /*num_sources=*/1,
                                      /*first_query_id=*/1000000);
  {
    ConstantDeadline deadlines(60 * kSecond);
    TraceOptions burst_options;
    burst_options.seed = ctx.DrawSeed("burst_trace_seed");
    burst_options.first_query_id = 5000000;
    const QueryTrace overlay =
        BuildTrace(task, burst, deadlines, duration, burst_options);
    trace.items.insert(trace.items.end(), overlay.items.begin(),
                       overlay.items.end());
    std::stable_sort(trace.items.begin(), trace.items.end(),
                     [](const TracedQuery& a, const TracedQuery& b) {
                       return a.arrival_time < b.arrival_time;
                     });
  }
  ctx.Event("trace queries = " + std::to_string(trace.size()));

  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = ReplicatedExecutors(task, 2);
  options.routing = RoutingPolicyKind::kRoundRobin;
  options.allow_rejection = false;
  options.speedup = kSpeedup;
  options.seed = ctx.DrawSeed("server_seed");
  options.queue_capacity = ctx.DrawInt("queue_capacity", 4, 16);
  options.steal_batch = 8;
  options.rebalance_period = 5 * kMillisecond;

  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  ConcurrentServer server(task, {&policy_a, &policy_b}, options);
  const ServingMetrics metrics = server.Run(trace);

  InvariantOptions inv;
  inv.allow_rejection = false;
  CheckServingInvariants(ctx, metrics, trace, inv);
  CheckSchedulerCounters(ctx, server.scheduler_stats());
}

/// Everything at once, sharded: a two-domain Schemble deployment where
/// each model's four replicas carry a randomly drawn mix of speed skew,
/// stragglers and (for at most one replica per model, placed so both
/// domains keep live coverage) fail-stops — under diurnal traffic with
/// deadlines. The widest randomization surface in the fleet.
void ShardedChaos(ScenarioContext& ctx) {
  const OracleBundle bundle(ctx.DrawSeed("task_seed"));
  const SyntheticTask& task = bundle.task;
  constexpr int kReplicas = 4;  // 2 per domain: fail-stops keep coverage

  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = ReplicatedExecutors(task, kReplicas);
  options.routing = RoutingPolicyKind::kLeastLoaded;
  options.speedup = kSpeedup;
  options.seed = ctx.DrawSeed("server_seed");
  options.steal_batch = 8;
  options.rebalance_period = 5 * kMillisecond;

  const double peak = ctx.DrawDouble("peak_rate_qps", 50.0, 90.0);
  DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(
      peak, /*segment_duration=*/500 * kMillisecond);
  const SimTime duration = traffic.total_duration();

  options.executor_faults.assign(options.executor_models.size(),
                                 ExecutorFault{});
  int failstops_injected = 0;
  for (int k = 0; k < task.num_models(); ++k) {
    // Replica ordinal r of model k lands in domain r % 2 (round-robin
    // deal); failing exactly one ordinal keeps a live replica of k in BOTH
    // domains (ordinal r and r+2 share a domain).
    const std::string model = std::to_string(k);
    for (int r = 0; r < kReplicas; ++r) {
      const size_t e = static_cast<size_t>(k * kReplicas + r);
      options.executor_faults[e].speed =
          ctx.DrawDouble("speed_m" + model + "_r" + std::to_string(r), 0.6,
                         1.6);
    }
    if (ctx.DrawChance("failstop_model_" + model, 0.5)) {
      const int victim = ctx.DrawInt("victim_replica_" + model, 0,
                                     kReplicas - 1);
      const int fail_pct = ctx.DrawInt("fail_pct_" + model, 30, 70);
      const size_t e = static_cast<size_t>(k * kReplicas + victim);
      options.executor_faults[e].fail_at = duration * fail_pct / 100;
      ++failstops_injected;
    } else if (ctx.DrawChance("straggle_model_" + model, 0.5)) {
      const int victim = ctx.DrawInt("straggler_replica_" + model, 0,
                                     kReplicas - 1);
      const size_t e = static_cast<size_t>(k * kReplicas + victim);
      options.executor_faults[e].straggle_after = duration / 3;
      options.executor_faults[e].straggle_factor =
          ctx.DrawDouble("straggle_factor_" + model, 1.5, 2.5);
    }
  }
  ctx.Event("failstops injected = " + std::to_string(failstops_injected));

  const SimTime deadline = ctx.DrawInt("deadline_ms", 3000, 6000) *
                           kMillisecond;
  ConstantDeadline deadlines(deadline);
  TraceOptions trace_options;
  trace_options.seed = ctx.DrawSeed("trace_seed");
  const QueryTrace trace =
      BuildTrace(task, traffic, deadlines, duration, trace_options);
  ctx.Event("trace queries = " + std::to_string(trace.size()));

  SchemblePolicy policy_a = bundle.MakePolicy();
  SchemblePolicy policy_b = bundle.MakePolicy();
  ConcurrentServer server(task, {&policy_a, &policy_b}, options);
  const ServingMetrics metrics = server.Run(trace);

  InvariantOptions inv;
  inv.max_relative_deadline = deadline;
  CheckServingInvariants(ctx, metrics, trace, inv);
  const auto sched = server.scheduler_stats();
  CheckSchedulerCounters(ctx, sched);
  // Executors can only die once each, and only the injected ones.
  ctx.ExpectTrue(sched.failstops <= failstops_injected,
                 "failstops bounded by injected faults");
}

/// The whole concurrency surface in one four-domain run: cross-query
/// batching, work stealing, rebalance donation, speed skew and fail-stops
/// together — the widest lock-interleaving scenario in the fleet. Added as
/// a moving target for the lock-order validator: Debug/sanitizer builds
/// validate every blocking Mutex::Lock in this tangle against the rank
/// table (src/common/lock_order.h), so any future cross-domain locking
/// shortcut that could deadlock dies here first.
void FourDomainGauntlet(ScenarioContext& ctx) {
  const uint64_t task_seed = ctx.DrawSeed("task_seed");
  const SyntheticTask base_task = MakeTextMatchingTask(task_seed);
  std::vector<ModelProfile> profiles = base_task.profiles();
  for (size_t k = 0; k < profiles.size(); ++k) {
    const std::string tag = std::to_string(k);
    profiles[k].batch_base_fraction =
        ctx.DrawDouble("batch_base_fraction_" + tag, 0.2, 0.6);
    profiles[k].batch_coalescing =
        ctx.DrawDouble("batch_coalescing_" + tag, 0.2, 0.7);
    profiles[k].max_batch = ctx.DrawInt("max_batch_" + tag, 2, 12);
  }
  const SyntheticTask task(base_task.spec(), std::move(profiles), task_seed);

  constexpr int kDomains = 4;
  // 2 per domain (replica ordinal r lands in domain r % kDomains), so one
  // fail-stop per model keeps a live replica in every domain.
  constexpr int kReplicas = 2 * kDomains;

  ConcurrentServerOptions options;
  options.num_domains = kDomains;
  options.executor_models = ReplicatedExecutors(task, kReplicas);
  options.routing = RoutingPolicyKind::kLeastLoaded;
  options.allow_rejection = false;
  options.speedup = kSpeedup;
  options.seed = ctx.DrawSeed("server_seed");
  options.batching = true;
  // Tiny queues keep the dispatch/steal/donate paths under pressure.
  options.queue_capacity = ctx.DrawInt("queue_capacity", 8, 32);
  options.steal_batch = ctx.DrawInt("steal_batch", 4, 12);
  options.rebalance_period = 2 * kMillisecond;

  // Original fans every query to every model; the rate band reproduces
  // BatchedCoalescing's proven per-executor overload (4-7 qps/executor on
  // 24 executors vs 4-10 on its 6), so queues run deep and the workers
  // must actually coalesce.
  const double rate = ctx.DrawDouble("rate_qps", 100.0, 160.0);
  const int duration_s = ctx.DrawInt("duration_s", 4, 7);
  const SimTime duration = duration_s * kSecond;

  options.executor_faults.assign(options.executor_models.size(),
                                 ExecutorFault{});
  int failstops_injected = 0;
  for (int k = 0; k < task.num_models(); ++k) {
    const std::string model = std::to_string(k);
    for (int r = 0; r < kReplicas; ++r) {
      const size_t e = static_cast<size_t>(k * kReplicas + r);
      options.executor_faults[e].speed =
          ctx.DrawDouble("speed_m" + model + "_r" + std::to_string(r), 0.7,
                         1.5);
    }
    if (ctx.DrawChance("failstop_model_" + model, 0.5)) {
      const int victim = ctx.DrawInt("victim_replica_" + model, 0,
                                     kReplicas - 1);
      const int fail_pct = ctx.DrawInt("fail_pct_" + model, 25, 75);
      const size_t e = static_cast<size_t>(k * kReplicas + victim);
      options.executor_faults[e].fail_at = duration * fail_pct / 100;
      ++failstops_injected;
    }
  }
  ctx.Event("failstops injected = " + std::to_string(failstops_injected));

  // A deliberately huge relative deadline: the run's length comes from the
  // trace, not the deadline, and with ~30 threads time-slicing on small
  // hosts (and TSan in CI) real-time stretch inflates virtual sojourns —
  // an hour of virtual headroom keeps force-mode "missed == 0" a
  // conservation statement instead of a host-speed lottery, and keeps the
  // Schemble DP feasible so its domains never finalize empty subsets.
  const QueryTrace trace = MakePoissonTrace(
      task, rate, duration, 3600 * kSecond, ctx.DrawSeed("trace_seed"));
  ctx.Event("trace queries = " + std::to_string(trace.size()));

  // Asymmetric deployment: two Original domains (fan-out keeps their
  // queues deep, guaranteeing coalescing and steal pressure) and two
  // Schemble domains (the planning path that buffers queries, the only
  // source of rebalance donations). The Schemble policies are built
  // against the batched-profile task so runtime pricing matches what the
  // server deploys.
  const OracleBundle bundle(task_seed);
  SchembleConfig config;
  config.score_source = ScoreSource::kOracle;
  SchemblePolicy policy_c(task, *bundle.profile, nullptr,
                          bundle.scorer.get(), config);
  SchemblePolicy policy_d(task, *bundle.profile, nullptr,
                          bundle.scorer.get(), config);
  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  ConcurrentServer server(
      task, {&policy_a, &policy_b, &policy_c, &policy_d}, options);
  const ServingMetrics metrics = server.Run(trace);

  InvariantOptions inv;
  inv.allow_rejection = false;
  CheckServingInvariants(ctx, metrics, trace, inv);
  const auto sched = server.scheduler_stats();
  CheckSchedulerCounters(ctx, sched);
  ctx.ExpectTrue(sched.failstops <= failstops_injected,
                 "failstops bounded by injected faults");
  // Deterministic structural assertions only: the overload makes
  // coalescing certain in the Original domains, but steal and donation
  // VOLUMES are contention-shaped, so they are reported, not asserted.
  ctx.ExpectGe(sched.batches_executed, 1, "batched executions under backlog");
  ctx.Note("steals = " + std::to_string(sched.steals) +
           " (stolen " + std::to_string(sched.stolen) + "), rebalances = " +
           std::to_string(sched.rebalances) + " (donated " +
           std::to_string(sched.donated) + "), requeues = " +
           std::to_string(sched.requeues) + ", batches = " +
           std::to_string(sched.batches_executed));
}

/// The sharded arrival pipeline under deliberately skewed pump ownership:
/// two arrival pumps with weights {4,1} — pump 0 replays 80% of the trace
/// — feed a two-domain force-mode deployment through the lock-free load
/// board. Randomized small inboxes make the TryPushRoutedAll fast path
/// overflow into the blocking PushRouted fallback while both pumps race
/// the admitters, and the weighted deal's per-pump routed counters are
/// asserted exactly (the partition is a pure function of trace length and
/// weights, never of thread timing).
void SkewedArrivalPumps(ScenarioContext& ctx) {
  const uint64_t task_seed = ctx.DrawSeed("task_seed");
  const SyntheticTask task = MakeTextMatchingTask(task_seed);

  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = ReplicatedExecutors(task, 2);
  options.routing = RoutingPolicyKind::kLeastLoaded;
  options.allow_rejection = false;
  options.speedup = kSpeedup;
  options.seed = ctx.DrawSeed("server_seed");
  options.queue_capacity = ctx.DrawInt("queue_capacity", 4, 16);
  // Tiny inboxes: the non-blocking batch push runs out of space and the
  // pumps exercise the blocking fallback on most cycles.
  options.inbox_capacity = ctx.DrawInt("inbox_capacity", 8, 32);
  options.steal_batch = 8;
  options.rebalance_period = 5 * kMillisecond;
  options.num_arrival_threads = 2;
  options.arrival_pump_weights = {4, 1};

  const double rate = ctx.DrawDouble("rate_qps", 40.0, 80.0);
  const SimTime duration = ctx.DrawInt("duration_s", 8, 12) * kSecond;
  // A deliberately huge relative deadline (the sharded-chaos pattern):
  // this scenario asserts the deterministic pump partition and force-mode
  // conservation, and on a loaded small host wall-clock jitter must not
  // convert scheduling delay into deadline misses.
  const QueryTrace trace = MakePoissonTrace(
      task, rate, duration, 3600 * kSecond, ctx.DrawSeed("trace_seed"));
  ctx.Event("trace queries = " + std::to_string(trace.size()));

  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  ConcurrentServer server(task, {&policy_a, &policy_b}, options);
  const ServingMetrics metrics = server.Run(trace);

  InvariantOptions inv;
  inv.allow_rejection = false;
  CheckServingInvariants(ctx, metrics, trace, inv);
  const auto sched = server.scheduler_stats();
  CheckSchedulerCounters(ctx, sched);

  // Weighted round-robin deal: pump 0 owns slots {0..3} of every 5-slot
  // cycle, so its share of an n-query trace is exact and deterministic.
  const int64_t n = trace.size();
  const int64_t pump0_expected = (n / 5) * 4 + std::min<int64_t>(n % 5, 4);
  ctx.ExpectEq(server.pump_routed(0), pump0_expected,
               "pump 0 owns 4 of every 5 trace slots");
  ctx.ExpectEq(server.pump_routed(0) + server.pump_routed(1), n,
               "every query routed by exactly one pump");
  // Replan-skip volume is contention-shaped: reported, never asserted.
  ctx.Note("replans_skipped = " + std::to_string(sched.replans_skipped) +
           ", replans = " + std::to_string(sched.replans));
}

}  // namespace

void RegisterBuiltinScenarios() {
  ScenarioRegistry& registry = ScenarioRegistry::Instance();
  if (!registry.scenarios().empty()) return;  // idempotent
  registry.Register({"hetero-speeds",
                     "heterogeneous executor speed multipliers, force mode",
                     &HeterogeneousSpeeds});
  registry.Register({"stragglers-diurnal",
                     "mid-trace service-time inflation under a diurnal day "
                     "shape, Schemble with deadlines",
                     &StragglersDiurnal});
  registry.Register({"fail-stop-recovery",
                     "one executor fail-stops mid-trace; its tasks re-queue "
                     "through the domain inbox, force-mode conservation",
                     &FailStopRecovery});
  registry.Register({"multi-tenant-priorities",
                     "per-tenant uniform deadlines (priority classes) on a "
                     "shared fleet",
                     &MultiTenantPriorities});
  registry.Register({"bursty-overlay",
                     "steady Poisson floor + diurnal burst overlay into a "
                     "two-domain sharded server with tiny queues",
                     &BurstyOverlay});
  registry.Register({"sharded-chaos",
                     "two domains, speed skew + stragglers + fail-stops at "
                     "once under diurnal load with deadlines",
                     &ShardedChaos});
  registry.Register({"batched-coalescing",
                     "randomized batch latency profiles + a fail-stop "
                     "executor under overload; coalescing drain conserves "
                     "every query",
                     &BatchedCoalescing});
  registry.Register({"four-domain-gauntlet",
                     "four domains with batching, stealing, donation, "
                     "speed skew and fail-stops at once; the widest "
                     "lock-interleaving target for the lock-order "
                     "validator",
                     &FourDomainGauntlet});
  registry.Register({"skewed-arrival-pumps",
                     "two weighted arrival pumps (pump 0 owns 80% of the "
                     "trace) race tiny domain inboxes; exact weighted-deal "
                     "partition, force-mode conservation",
                     &SkewedArrivalPumps});
}

}  // namespace schemble
