#ifndef SCHEMBLE_STRESS_INVARIANTS_H_
#define SCHEMBLE_STRESS_INVARIANTS_H_

#include "runtime/concurrent_server.h"
#include "serving/metrics.h"
#include "simcore/simulation.h"
#include "stress/scenario.h"
#include "workload/trace.h"

namespace schemble {

/// What a scenario run promises about the metrics it produced — the checks
/// hold REGARDLESS of the randomized configuration, thread timing, or host
/// load (anything timing-sensitive belongs in scenario-specific
/// expectations, not here).
struct InvariantOptions {
  /// Rejection mode (deadline thread active) vs force mode.
  bool allow_rejection = true;
  /// Largest relative deadline any query in the trace can carry; bounds
  /// the no-deadline-thread-starvation proxy below. <= 0 skips the check.
  SimTime max_relative_deadline = 0;
};

/// Asserts the structural invariants of one serving run through `ctx`:
///
///  - query conservation: total == trace size, processed + missed ==
///    total, subset-size histogram and per-segment arrival/processed/
///    missed sums all re-add to the same totals, latency sample count ==
///    processed. Together with the runtime's own exactly-once finalize
///    CHECK this is the "zero lost queries" balance — it holds through
///    fail-stops because re-queued queries are finalized exactly once.
///  - force mode processes everything: missed == 0, processed == total.
///  - monotone metrics: latency min <= mean/median <= p95 <= max,
///    accuracy sums within [0, total].
///  - no deadline-thread starvation (rejection mode): every finalized
///    query's latency is bounded by the largest relative deadline plus a
///    generous load-lag allowance — an unserviced deadline heap would blow
///    past it.
void CheckServingInvariants(ScenarioContext& ctx,
                            const ServingMetrics& metrics,
                            const QueryTrace& trace,
                            const InvariantOptions& options);

/// Sanity over the scheduler's fault telemetry: counters are non-negative
/// and mutually consistent (requeues without failstops can only come from
/// the dispatch-shortfall path, stale drops require a generation to have
/// moved). Appends the counter values as notes for the run report.
void CheckSchedulerCounters(
    ScenarioContext& ctx,
    const ConcurrentServer::SchedulerStatsSnapshot& sched);

}  // namespace schemble

#endif  // SCHEMBLE_STRESS_INVARIANTS_H_
