#ifndef SCHEMBLE_STRESS_LCG_H_
#define SCHEMBLE_STRESS_LCG_H_

#include <cstdint>

#include "common/logging.h"

namespace schemble {

/// The stress harness's one source of randomness: a 64-bit linear
/// congruential generator (MMIX multiplier/increment) in the MathGeoLib
/// TestRunner tradition — a deliberately tiny PRNG whose whole state is
/// the seed, so printing the seed IS printing the full reproduction
/// recipe. Every scenario parameter, trace seed and fault profile flows
/// from one Lcg instance; tools/lint.py bans rand()/std::random_device/
/// std::mt19937 under src/stress and tests/stress to keep that true.
///
/// Statistical quality is intentionally secondary to replayability: the
/// harness needs diverse-but-reproducible configurations, not
/// cryptographic randomness.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {
    // Scramble the (possibly tiny, user-typed) seed once so seeds 1 and 2
    // do not start with near-identical high bits.
    state_ = Mix(state_ + kIncrement);
  }

  /// Next raw 32-bit draw: the HIGH half of the advanced 64-bit state (the
  /// low bits of an LCG cycle with short periods and are never exposed).
  uint32_t Next() {
    state_ = state_ * kMultiplier + kIncrement;
    return static_cast<uint32_t>(state_ >> 32);
  }

  /// Uniform integer in [lo, hi], both inclusive. The modulo bias is
  /// irrelevant at scenario-parameter ranges (hundreds of values against a
  /// 2^32 draw) and keeps the mapping trivially portable.
  int IntRange(int lo, int hi) {
    SCHEMBLE_CHECK_LE(lo, hi);
    const uint32_t span = static_cast<uint32_t>(hi - lo) + 1u;
    return lo + static_cast<int>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double Float01() {
    return static_cast<double>(Next()) * (1.0 / 4294967296.0);
  }

  /// Uniform double in [lo, hi).
  double FloatRange(double lo, double hi) {
    SCHEMBLE_CHECK_LE(lo, hi);
    return lo + (hi - lo) * Float01();
  }

  /// True with probability `p`.
  bool Chance(double p) { return Float01() < p; }

  /// Derives an independent-looking 64-bit sub-seed (for BuildTrace,
  /// MakeTextMatchingTask, server seeds, ...) while advancing this
  /// generator exactly once, so the draw sequence stays a pure function of
  /// the root seed.
  uint64_t NextSeed() {
    state_ = state_ * kMultiplier + kIncrement;
    return Mix(state_);
  }

  uint64_t state() const { return state_; }

 private:
  /// SplitMix64 finalizer: full-avalanche mixing for seed derivation.
  static uint64_t Mix(uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  static constexpr uint64_t kMultiplier = 6364136223846793005ULL;
  static constexpr uint64_t kIncrement = 1442695040888963407ULL;

  uint64_t state_;
};

}  // namespace schemble

#endif  // SCHEMBLE_STRESS_LCG_H_
