#include "stress/scenario.h"

#include <cstdio>
#include <utility>

#include "common/logging.h"

namespace schemble {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return std::string(buffer);
}

int ScenarioContext::DrawInt(const std::string& name, int lo, int hi) {
  const int value = rng_.IntRange(lo, hi);
  Event("draw " + name + " = " + std::to_string(value) + " in [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  return value;
}

double ScenarioContext::DrawDouble(const std::string& name, double lo,
                                   double hi) {
  const double value = rng_.FloatRange(lo, hi);
  Event("draw " + name + " = " + FormatDouble(value) + " in [" +
        FormatDouble(lo) + ", " + FormatDouble(hi) + "]");
  return value;
}

bool ScenarioContext::DrawChance(const std::string& name, double p) {
  const bool value = rng_.Chance(p);
  Event("draw " + name + " = " + (value ? "true" : "false") + " (p=" +
        FormatDouble(p) + ")");
  return value;
}

uint64_t ScenarioContext::DrawSeed(const std::string& name) {
  const uint64_t value = rng_.NextSeed();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  Event("draw " + name + " = " + buffer);
  return value;
}

void ScenarioContext::ExpectTrue(bool condition, const std::string& what) {
  if (!condition) Fail("expected: " + what);
}

void ScenarioContext::ExpectEq(int64_t actual, int64_t expected,
                               const std::string& what) {
  if (actual != expected) {
    Fail("expected " + what + " == " + std::to_string(expected) + ", got " +
         std::to_string(actual));
  }
}

void ScenarioContext::ExpectGe(int64_t actual, int64_t bound,
                               const std::string& what) {
  if (actual < bound) {
    Fail("expected " + what + " >= " + std::to_string(bound) + ", got " +
         std::to_string(actual));
  }
}

void ScenarioContext::ExpectLeDouble(double actual, double bound,
                                     const std::string& what) {
  if (!(actual <= bound)) {
    Fail("expected " + what + " <= " + FormatDouble(bound) + ", got " +
         FormatDouble(actual));
  }
}

ScenarioRegistry& ScenarioRegistry::Instance() {
  static ScenarioRegistry* registry = new ScenarioRegistry();
  return *registry;
}

void ScenarioRegistry::Register(Scenario scenario) {
  SCHEMBLE_CHECK(scenario.fn != nullptr);
  SCHEMBLE_CHECK(!scenario.name.empty());
  SCHEMBLE_CHECK(Find(scenario.name) == nullptr)
      << "duplicate scenario name " << scenario.name;
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::Find(const std::string& name) const {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

ScenarioContext RunScenario(const Scenario& scenario, uint64_t seed) {
  ScenarioContext ctx(seed);
  ctx.Event("scenario " + scenario.name + " seed " + std::to_string(seed));
  scenario.fn(ctx);
  return ctx;
}

}  // namespace schemble
