#!/usr/bin/env bash
# Regenerates the numeric-kernel benchmark baseline (bench/BENCH_nn.json)
# from the BM_Knn*/BM_MlpTrainStep microbenchmarks in bench_nn.
#
# Usage:
#   bench/run_nn_bench.sh [output.json]
#
# Expects build/bench/bench_nn to exist (override with $BENCH_BIN), i.e.
# run after:
#   cmake -B build -S . && cmake --build build --target bench_nn
# or use the one-command wrapper target:
#   cmake --build build --target schemble_bench_nn
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${1:-$ROOT/bench/BENCH_nn.json}"
BIN="${BENCH_BIN:-$ROOT/build/bench/bench_nn}"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found/executable." >&2
  echo "build it first: cmake --build build --target bench_nn" >&2
  exit 1
fi

"$BIN" \
  --benchmark_out_format=json \
  --benchmark_out="$OUT" \
  "${@:2}"

echo "wrote $OUT"
