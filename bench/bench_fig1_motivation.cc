// Fig. 1 (motivation): (a) one-day query traffic and the original deep
// ensemble's deadline miss rate per time segment; (b) accuracy (vs true
// labels) and latency of the ensemble and its base models.

#include <cstdio>

#include "bench_util.h"
#include "baselines/original_policy.h"

using namespace schemble;
using namespace schemble::bench;

namespace {

void Fig1a(const SyntheticTask& task) {
  std::printf("Fig. 1a: one-day Q&A traffic and the original pipeline's "
              "deadline miss rate (100 ms deadlines)\n");
  DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(/*peak=*/55.0);
  ConstantDeadline deadlines(100 * kMillisecond);
  TraceOptions options;
  options.seed = 101;
  const QueryTrace trace = BuildTrace(task, traffic, deadlines,
                                      traffic.total_duration(), options);
  OriginalPolicy original;
  const ServingMetrics metrics =
      RunPolicy(task, &original, trace, /*allow_rejection=*/true, {},
                traffic.segment_duration());

  TextTable table({"Hour", "Arrivals", "DMR%"});
  for (size_t s = 0; s < metrics.segments.size(); ++s) {
    table.AddRow({std::to_string(s),
                  std::to_string(metrics.segments[s].arrivals),
                  Pct(metrics.segments[s].deadline_miss_rate())});
  }
  table.Print();
  std::printf("Day total: %lld queries, overall DMR %s%%\n\n",
              static_cast<long long>(metrics.total),
              Pct(metrics.deadline_miss_rate()).c_str());
}

void Fig1b(const SyntheticTask& task) {
  std::printf("Fig. 1b: ensemble vs base models (accuracy on true labels; "
              "10k uniform-difficulty samples)\n");
  const auto data = task.GenerateDataset(
      10000, DifficultyDistribution::Realistic(), 2025);
  TextTable table({"Model", "Accuracy%", "Latency (ms)"});
  for (int k = 0; k < task.num_models(); ++k) {
    double acc = 0.0;
    for (const Query& q : data) acc += task.TrueScore(q.model_outputs[k], q);
    table.AddRow({task.profile(k).name,
                  Pct(acc / static_cast<double>(data.size())),
                  TextTable::Num(
                      SimTimeToMillis(task.profile(k).latency_us), 0)});
  }
  double ensemble_acc = 0.0;
  SimTime slowest = 0;
  for (int k = 0; k < task.num_models(); ++k) {
    slowest = std::max(slowest, task.profile(k).latency_us);
  }
  for (const Query& q : data) {
    ensemble_acc += task.TrueScore(q.ensemble_output, q);
  }
  table.AddRow({"Ensemble", Pct(ensemble_acc / data.size()),
                TextTable::Num(SimTimeToMillis(slowest) + 2.0, 0)});
  table.Print();
}

}  // namespace

int main() {
  SyntheticTask task = MakeTextMatchingTask();
  Fig1a(task);
  Fig1b(task);
  return 0;
}
