// Exp-1 / Fig. 8 + Table I (IR column): image retrieval (two-model DELG
// ensemble) with Poisson traffic and constant deadlines.

#include <cstdio>

#include "bench_util.h"

using namespace schemble;
using namespace schemble::bench;

int main() {
  std::printf("Exp-1: image retrieval, Poisson traffic, constant "
              "deadlines\n\n");
  const double rate = 16.0;
  BenchContext ctx = MakeContext(TaskKind::kImageRetrieval, rate);

  PoissonTraffic traffic(rate);
  auto trace_factory = [&](double deadline_ms) {
    ConstantDeadline deadlines(MillisToSimTime(deadline_ms));
    TraceOptions options;
    options.seed = 808;
    return BuildTrace(*ctx.task, traffic, deadlines, 120 * kSecond, options);
  };
  // Static greedy search on a pilot trace at the middle deadline.
  ctx.static_deployment =
      ChooseStaticDeploymentByPilot(ctx, trace_factory(180));

  RunDeadlineSweep(ctx, {120, 150, 180, 210, 240}, trace_factory, "mAP");
  return 0;
}
