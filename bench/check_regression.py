#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a pinned baseline.

Usage:
    bench/check_regression.py CURRENT.json [--baseline bench/BENCH_scheduler.json]
                              [--threshold 2.5]

For every benchmark name present in both files, the per-iteration cpu_time
is compared. The check fails (exit 1) if any benchmark is more than
`threshold` times slower than the baseline. A generous default threshold
(2.5x) keeps the check insensitive to runner jitter and hardware deltas
while still catching order-of-magnitude algorithmic regressions (e.g.
losing the DP workspace reuse).

Benchmarks only present in one file are reported but never fail the check,
so adding or retiring benchmarks does not require touching the baseline in
the same commit.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: cpu_time_us} for per-iteration entries in `path`."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bench.get("run_type") == "aggregate":
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}[unit]
        out[bench["name"]] = bench["cpu_time"] * scale
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="benchmark JSON from this run")
    parser.add_argument(
        "--baseline",
        default="bench/BENCH_scheduler.json",
        help="pinned baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.5,
        help="fail if cpu_time exceeds baseline by this factor "
        "(default: %(default)s)",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    common = sorted(set(baseline) & set(current))
    if not common:
        print("error: no benchmark names in common between "
              f"{args.baseline} and {args.current}", file=sys.stderr)
        return 2

    regressions = []
    width = max(len(name) for name in common)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in common:
        base_us = baseline[name]
        cur_us = current[name]
        ratio = cur_us / base_us if base_us > 0 else float("inf")
        flag = ""
        if ratio > args.threshold:
            regressions.append((name, ratio))
            flag = "  <-- REGRESSION"
        print(f"{name:<{width}}  {base_us:>10.1f}us  {cur_us:>10.1f}us  "
              f"{ratio:>5.2f}x{flag}")

    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  (new, no baseline)")
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  (baseline only, not run)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold}x:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1

    print(f"\nOK: {len(common)} benchmark(s) within {args.threshold}x "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
