#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a pinned baseline.

Usage:
    bench/check_regression.py CURRENT.json [--baseline bench/BENCH_scheduler.json]
                              [--threshold 2.5]
                              [--counter-min-ratio throughput_qps=0.4]

For every benchmark name present in both files, the per-iteration cpu_time
is compared. The check fails (exit 1) if any benchmark is more than
`threshold` times slower than the baseline. A generous default threshold
(2.5x) keeps the check insensitive to runner jitter and hardware deltas
while still catching order-of-magnitude algorithmic regressions (e.g.
losing the DP workspace reuse).

`--counter-min-ratio NAME=RATIO` (repeatable) additionally gates custom
counters where HIGHER is better: for every benchmark that carries counter
NAME in both files, the check fails if current/baseline drops below RATIO.
Benchmarks without the counter in either file are skipped, so the gate
composes with mixed-counter suites.

Benchmarks only present in one file are reported but never fail the check,
so adding or retiring benchmarks does not require touching the baseline in
the same commit.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: entry_dict} for per-iteration entries in `path`,
    with cpu_time normalized to microseconds under "cpu_time_us"."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bench.get("run_type") == "aggregate":
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}[unit]
        entry = dict(bench)
        entry["cpu_time_us"] = bench["cpu_time"] * scale
        out[bench["name"]] = entry
    return out


def parse_counter_min_ratio(spec):
    """Parses a NAME=RATIO argument into (name, float_ratio)."""
    name, sep, value = spec.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"expected NAME=RATIO, got {spec!r}")
    try:
        return name, float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"ratio in {spec!r} is not a number")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="benchmark JSON from this run")
    parser.add_argument(
        "--baseline",
        default="bench/BENCH_scheduler.json",
        help="pinned baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.5,
        help="fail if cpu_time exceeds baseline by this factor "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--counter-min-ratio",
        type=parse_counter_min_ratio,
        action="append",
        default=[],
        metavar="NAME=RATIO",
        help="fail if custom counter NAME (higher is better) drops below "
        "RATIO x baseline on any benchmark carrying it (repeatable)",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    common = sorted(set(baseline) & set(current))
    if not common:
        print("error: no benchmark names in common between "
              f"{args.baseline} and {args.current}", file=sys.stderr)
        return 2

    regressions = []
    width = max(len(name) for name in common)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in common:
        base_us = baseline[name]["cpu_time_us"]
        cur_us = current[name]["cpu_time_us"]
        ratio = cur_us / base_us if base_us > 0 else float("inf")
        flag = ""
        if ratio > args.threshold:
            regressions.append((name, ratio))
            flag = "  <-- REGRESSION"
        print(f"{name:<{width}}  {base_us:>10.1f}us  {cur_us:>10.1f}us  "
              f"{ratio:>5.2f}x{flag}")

    counter_regressions = []
    for counter, min_ratio in args.counter_min_ratio:
        gated = [name for name in common
                 if counter in baseline[name] and counter in current[name]]
        if not gated:
            print(f"counter {counter}: no benchmark carries it in both files")
            continue
        print(f"\ncounter {counter} (min ratio {min_ratio}x):")
        for name in gated:
            base = baseline[name][counter]
            cur = current[name][counter]
            ratio = cur / base if base > 0 else float("inf")
            flag = ""
            if ratio < min_ratio:
                counter_regressions.append((name, counter, ratio))
                flag = "  <-- REGRESSION"
            print(f"{name:<{width}}  {base:>12.1f}  {cur:>12.1f}  "
                  f"{ratio:>5.2f}x{flag}")

    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  (new, no baseline)")
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  (baseline only, not run)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold}x:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
    if counter_regressions:
        print(f"\nFAIL: {len(counter_regressions)} counter value(s) below "
              "their minimum ratio:", file=sys.stderr)
        for name, counter, ratio in counter_regressions:
            print(f"  {name} {counter}: {ratio:.2f}x", file=sys.stderr)
    if regressions or counter_regressions:
        return 1

    print(f"\nOK: {len(common)} benchmark(s) within {args.threshold}x "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
