// Fig. 9 + Fig. 14: per-time-segment latency, accuracy and deadline miss
// rate on the one-day text-matching trace, for the policies the paper
// plots (Original, Static, Gating, DES, Schemble).

#include <cstdio>

#include "bench_util.h"

using namespace schemble;
using namespace schemble::bench;

int main() {
  const double peak_rate = 85.0;
  BenchContext ctx = MakeContext(TaskKind::kTextMatching, peak_rate * 0.45);
  DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(
      peak_rate, /*segment_duration=*/20 * kSecond);
  ConstantDeadline deadlines(100 * kMillisecond);
  TraceOptions options;
  options.seed = 111;
  const QueryTrace trace = BuildTrace(*ctx.task, traffic, deadlines,
                                      traffic.total_duration(), options);
  ctx.static_deployment = ChooseStaticDeploymentByPilot(ctx, trace);

  const auto runs = RunExp1Suite(ctx, trace, /*allow_rejection=*/true,
                                 traffic.segment_duration());

  std::printf("Fig. 9a/14: per-segment deadline miss rate (%%), one-day "
              "Q&A trace (1 segment = 1 compressed hour), 100 ms "
              "deadlines\n");
  std::vector<std::string> headers = {"Hour", "Arrivals"};
  for (const auto& run : runs) headers.push_back(run.name);
  TextTable dmr_table(headers);
  const size_t segments = runs[0].metrics.segments.size();
  for (size_t s = 0; s < segments; ++s) {
    std::vector<std::string> cells = {
        std::to_string(s),
        std::to_string(runs[0].metrics.segments[s].arrivals)};
    for (const auto& run : runs) {
      cells.push_back(
          s < run.metrics.segments.size()
              ? Pct(run.metrics.segments[s].deadline_miss_rate())
              : "-");
    }
    dmr_table.AddRow(std::move(cells));
  }
  dmr_table.Print();

  std::printf("\nFig. 9b/14: per-hour accuracy (%%)\n");
  TextTable acc_table(headers);
  for (size_t s = 0; s < segments; ++s) {
    std::vector<std::string> cells = {
        std::to_string(s),
        std::to_string(runs[0].metrics.segments[s].arrivals)};
    for (const auto& run : runs) {
      cells.push_back(s < run.metrics.segments.size()
                          ? Pct(run.metrics.segments[s].accuracy())
                          : "-");
    }
    acc_table.AddRow(std::move(cells));
  }
  acc_table.Print();

  std::printf("\nFig. 9 (latency): per-hour mean latency of processed "
              "queries (ms)\n");
  TextTable lat_table(headers);
  for (size_t s = 0; s < segments; ++s) {
    std::vector<std::string> cells = {
        std::to_string(s),
        std::to_string(runs[0].metrics.segments[s].arrivals)};
    for (const auto& run : runs) {
      cells.push_back(
          s < run.metrics.segments.size()
              ? TextTable::Num(run.metrics.segments[s].mean_latency_ms(), 1)
              : "-");
    }
    lat_table.AddRow(std::move(cells));
  }
  lat_table.Print();

  std::printf("\nFig. 14 (adaptivity): per-segment mean executed-subset "
              "size\n");
  TextTable size_table(headers);
  for (size_t s = 0; s < segments; ++s) {
    std::vector<std::string> cells = {
        std::to_string(s),
        std::to_string(runs[0].metrics.segments[s].arrivals)};
    for (const auto& run : runs) {
      cells.push_back(
          s < run.metrics.segments.size()
              ? TextTable::Num(run.metrics.segments[s].mean_subset_size(), 2)
              : "-");
    }
    size_table.AddRow(std::move(cells));
  }
  size_table.Print();
  return 0;
}
