// Exp-1 / Fig. 6 + Table I (TM column): accuracy and deadline miss rate of
// all six policies on the text-matching task under the one-day Q&A trace,
// swept over deadline constraints.

#include <cstdio>

#include "bench_util.h"

using namespace schemble;
using namespace schemble::bench;

int main() {
  std::printf("Exp-1: text matching, one-day Q&A trace (30x burst), "
              "constant deadlines\n\n");
  const double peak_rate = 85.0;
  BenchContext ctx = MakeContext(TaskKind::kTextMatching, 0.45 * peak_rate);

  // Compressed day: 24 segments of 20 s keeps the sweep fast while
  // preserving the burst shape.
  DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(
      peak_rate, /*segment_duration=*/20 * kSecond);
  auto trace_factory = [&](double deadline_ms) {
    ConstantDeadline deadlines(MillisToSimTime(deadline_ms));
    TraceOptions options;
    options.seed = 606;
    return BuildTrace(*ctx.task, traffic, deadlines,
                      traffic.total_duration(), options);
  };
  // Static greedy search on a pilot trace at the middle deadline.
  ctx.static_deployment =
      ChooseStaticDeploymentByPilot(ctx, trace_factory(100));
  std::printf("Static deployment chosen: subset=0x%x replicas=[",
              ctx.static_deployment.subset);
  for (int r : ctx.static_deployment.replicas) std::printf("%d ", r);
  std::printf("]\n\n");

  RunDeadlineSweep(ctx, {80, 90, 100, 110, 120}, trace_factory, "Acc");
  return 0;
}
