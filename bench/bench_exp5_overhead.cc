// Exp-5 / Fig. 13: computation and resource overhead of Schemble's added
// modules — the discrepancy-prediction network and the DP scheduler —
// relative to the deep ensemble. Includes google-benchmark microbenchmarks
// of the host-side costs.

#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/scheduler.h"
#include "core/scheduler_reference.h"

using namespace schemble;
using namespace schemble::bench;

namespace {

BenchContext* g_ctx = nullptr;

void BM_PredictorForward(benchmark::State& state) {
  const Query query = g_ctx->task->GenerateQuery(424242, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_ctx->pipeline->predictor().Predict(query));
  }
}
BENCHMARK(BM_PredictorForward);

void BM_DiscrepancyScore(benchmark::State& state) {
  const Query query = g_ctx->task->GenerateQuery(424243, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_ctx->pipeline->scorer().Score(query));
  }
}
BENCHMARK(BM_DiscrepancyScore);

// Deterministic synthetic sweep instance, independent of the pipeline so
// the same generator covers arbitrary (n, m): m heterogeneous models
// (5..5+3m ms service times), n queries with staggered deadlines and
// monotone diminishing-return utility rows. BENCH_scheduler.json (see
// bench/run_scheduler_bench.sh) records these series as the repo's
// scheduler-performance baseline.
struct SweepInstance {
  SchedulerEnv env;
  std::vector<SchedulerQuery> queries;
};

SweepInstance MakeSweepInstance(int n, int m) {
  SweepInstance inst;
  inst.env.now = 0;
  for (int k = 0; k < m; ++k) {
    inst.env.model_available_at.push_back(0);
    inst.env.model_exec_time.push_back((5 + 3 * k) * kMillisecond);
  }
  const SubsetMask full = FullMask(m);
  for (int i = 0; i < n; ++i) {
    SchedulerQuery q;
    q.id = i;
    q.deadline = (30 + 13 * i) * kMillisecond;
    q.utilities.assign(static_cast<size_t>(full) + 1, 0.0);
    for (SubsetMask mask = 1; mask <= full; ++mask) {
      double miss = 1.0;
      for (int k = 0; k < m; ++k) {
        if (mask & (SubsetMask{1} << k)) {
          miss *= 0.45 - 0.03 * k + 0.01 * (i % 5);
        }
      }
      q.utilities[mask] = 1.0 - miss;
    }
    inst.queries.push_back(std::move(q));
  }
  return inst;
}

DpScheduler::Options SweepOptions(benchmark::State& state) {
  DpScheduler::Options options;
  options.delta = 1.0 / static_cast<double>(state.range(2));
  options.max_queries = static_cast<int>(state.range(0));
  return options;
}

// Args: {n queries, m models, 1/delta}.
void BM_DpSchedule(benchmark::State& state) {
  const SweepInstance inst = MakeSweepInstance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  DpScheduler dp(SweepOptions(state));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.Schedule(inst.queries, inst.env));
  }
  state.counters["dp_ops"] = static_cast<double>(dp.last_ops());
  state.counters["workspace_grows"] =
      static_cast<double>(dp.workspace_stats().grow_events);
}
BENCHMARK(BM_DpSchedule)
    ->ArgsProduct({{8, 24, 48}, {3, 5, 8}, {10, 50}})
    ->Unit(benchmark::kMicrosecond);

// The retained seed implementation on identical instances: the "before"
// rows of the before/after comparison in BENCH_scheduler.json.
void BM_DpScheduleReference(benchmark::State& state) {
  const SweepInstance inst = MakeSweepInstance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  ReferenceDpScheduler dp(SweepOptions(state));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.Schedule(inst.queries, inst.env));
  }
  state.counters["dp_ops"] = static_cast<double>(dp.last_ops());
}
BENCHMARK(BM_DpScheduleReference)
    ->Args({8, 3, 10})
    ->Args({8, 3, 50})
    ->Args({24, 3, 10})
    ->Args({24, 3, 50})
    ->Args({24, 5, 50})
    ->Unit(benchmark::kMicrosecond);

// Args: {n queries, m models}. Exercises the copy-free greedy mask loop.
void BM_GreedySchedule(benchmark::State& state) {
  const SweepInstance inst = MakeSweepInstance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  GreedyScheduler greedy(GreedyScheduler::Order::kEdf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy.Schedule(inst.queries, inst.env));
  }
}
BENCHMARK(BM_GreedySchedule)
    ->Args({24, 3})
    ->Args({24, 8})
    ->Args({48, 8})
    ->Unit(benchmark::kMicrosecond);

void PrintFig13() {
  std::printf("Fig. 13: overhead of the prediction network vs the deep "
              "ensemble\n");
  const auto& predictor = g_ctx->pipeline->predictor();
  SimTime ensemble_makespan = 0;
  double ensemble_memory = 0.0;
  for (int k = 0; k < g_ctx->task->num_models(); ++k) {
    ensemble_makespan =
        std::max(ensemble_makespan, g_ctx->task->profile(k).latency_us);
    ensemble_memory += g_ctx->task->profile(k).memory_mb;
  }
  TextTable table({"Component", "Latency (ms)", "Memory (MB)"});
  table.AddRow({"Deep ensemble",
                TextTable::Num(SimTimeToMillis(ensemble_makespan), 1),
                TextTable::Num(ensemble_memory, 0)});
  table.AddRow({"Prediction network",
                TextTable::Num(
                    SimTimeToMillis(predictor.inference_latency_us()), 1),
                TextTable::Num(predictor.MemoryMb(), 3)});
  table.Print();
  std::printf("Relative: %.1f%% of the ensemble's runtime, %.4f%% of its "
              "memory (paper: 6.5%% runtime, 0.4-2%% memory)\n\n",
              100.0 * predictor.inference_latency_us() / ensemble_makespan,
              100.0 * predictor.MemoryMb() / ensemble_memory);
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx = MakeContext(TaskKind::kTextMatching, 20.0,
                                 /*history_size=*/2500);
  g_ctx = &ctx;
  PrintFig13();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
