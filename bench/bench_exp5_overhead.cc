// Exp-5 / Fig. 13: computation and resource overhead of Schemble's added
// modules — the discrepancy-prediction network and the DP scheduler —
// relative to the deep ensemble. Includes google-benchmark microbenchmarks
// of the host-side costs.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/scheduler.h"

using namespace schemble;
using namespace schemble::bench;

namespace {

BenchContext* g_ctx = nullptr;

void BM_PredictorForward(benchmark::State& state) {
  const Query query = g_ctx->task->GenerateQuery(424242, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_ctx->pipeline->predictor().Predict(query));
  }
}
BENCHMARK(BM_PredictorForward);

void BM_DiscrepancyScore(benchmark::State& state) {
  const Query query = g_ctx->task->GenerateQuery(424243, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_ctx->pipeline->scorer().Score(query));
  }
}
BENCHMARK(BM_DiscrepancyScore);

void BM_DpSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double delta = 1.0 / static_cast<double>(state.range(1));
  SchedulerEnv env;
  env.now = 0;
  for (int k = 0; k < g_ctx->task->num_models(); ++k) {
    env.model_available_at.push_back(0);
    env.model_exec_time.push_back(g_ctx->task->profile(k).latency_us);
  }
  std::vector<SchedulerQuery> queries;
  const auto row = g_ctx->pipeline->profile().UtilityRow(0.4);
  for (int i = 0; i < n; ++i) {
    SchedulerQuery q;
    q.id = i;
    q.deadline = (100 + 13 * i) * kMillisecond;
    q.utilities = row;
    queries.push_back(std::move(q));
  }
  DpScheduler::Options options;
  options.delta = delta;
  DpScheduler dp(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.Schedule(queries, env));
  }
  state.counters["dp_ops"] = static_cast<double>(dp.last_ops());
}
BENCHMARK(BM_DpSchedule)
    ->Args({8, 10})
    ->Args({8, 100})
    ->Args({8, 1000})
    ->Args({16, 100})
    ->Args({24, 100});

void PrintFig13() {
  std::printf("Fig. 13: overhead of the prediction network vs the deep "
              "ensemble\n");
  const auto& predictor = g_ctx->pipeline->predictor();
  SimTime ensemble_makespan = 0;
  double ensemble_memory = 0.0;
  for (int k = 0; k < g_ctx->task->num_models(); ++k) {
    ensemble_makespan =
        std::max(ensemble_makespan, g_ctx->task->profile(k).latency_us);
    ensemble_memory += g_ctx->task->profile(k).memory_mb;
  }
  TextTable table({"Component", "Latency (ms)", "Memory (MB)"});
  table.AddRow({"Deep ensemble",
                TextTable::Num(SimTimeToMillis(ensemble_makespan), 1),
                TextTable::Num(ensemble_memory, 0)});
  table.AddRow({"Prediction network",
                TextTable::Num(
                    SimTimeToMillis(predictor.inference_latency_us()), 1),
                TextTable::Num(predictor.MemoryMb(), 3)});
  table.Print();
  std::printf("Relative: %.1f%% of the ensemble's runtime, %.4f%% of its "
              "memory (paper: 6.5%% runtime, 0.4-2%% memory)\n\n",
              100.0 * predictor.inference_latency_us() / ensemble_makespan,
              100.0 * predictor.MemoryMb() / ensemble_memory);
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx = MakeContext(TaskKind::kTextMatching, 20.0,
                                 /*history_size=*/2500);
  g_ctx = &ctx;
  PrintFig13();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
