// Numeric-kernel microbenchmarks: the flat allocation-free KnnIndex
// (query + batched fill) against the retained ReferenceKnnIndex, and the
// MLP train step on the allocation-free ApplyInto path. The committed
// baseline bench/BENCH_nn.json (see bench/run_nn_bench.sh) pins these
// series; CI's bench smoke reruns them through bench/check_regression.py.
//
// Args convention for the KNN series: {N records, dim, k}.

#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/knn.h"
#include "nn/knn_reference.h"
#include "nn/mlp.h"

using namespace schemble;

namespace {

constexpr int kFillBatch = 64;

std::vector<std::vector<double>> MakeRecords(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> records(n, std::vector<double>(dim));
  for (auto& r : records) {
    for (double& v : r) v = rng.Normal();
  }
  return records;
}

/// Every other dimension observed; KNN fills the odd ones.
std::vector<bool> AlternatingMask(int dim) {
  std::vector<bool> mask(dim);
  for (int d = 0; d < dim; ++d) mask[d] = (d % 2) == 0;
  return mask;
}

void BM_KnnQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  auto index = KnnIndex::Build(MakeRecords(n, dim, 101)).value();
  const auto points = MakeRecords(kFillBatch, dim, 102);
  const std::vector<bool> mask = AlternatingMask(dim);
  KnnIndex::Workspace ws;
  std::vector<KnnIndex::Neighbor> out;
  size_t i = 0;
  for (auto _ : state) {
    index.QueryInto(points[i], mask, k, &ws, &out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % points.size();
  }
}
BENCHMARK(BM_KnnQuery)
    ->Args({500, 8, 10})
    ->Args({2000, 8, 10})
    ->Args({2000, 16, 10})
    ->Args({8000, 8, 10});

void BM_KnnQueryReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  auto index = ReferenceKnnIndex::Build(MakeRecords(n, dim, 101)).value();
  const auto points = MakeRecords(kFillBatch, dim, 102);
  const std::vector<bool> mask = AlternatingMask(dim);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(points[i], mask, k));
    i = (i + 1) % points.size();
  }
}
BENCHMARK(BM_KnnQueryReference)
    ->Args({500, 8, 10})
    ->Args({2000, 8, 10})
    ->Args({2000, 16, 10})
    ->Args({8000, 8, 10});

// One iteration = one 64-point batch; items/s reports per-point rate. The
// issue bar: the {2000, 8, 10} point must run >= 3x faster than
// BM_KnnFillBatchReference at the same shape.
void BM_KnnFillBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  auto index = KnnIndex::Build(MakeRecords(n, dim, 103)).value();
  const auto points = MakeRecords(kFillBatch, dim, 104);
  const std::vector<bool> mask = AlternatingMask(dim);
  KnnIndex::Workspace ws;
  std::vector<std::vector<double>> outs;
  for (auto _ : state) {
    index.FillMissingBatch(points, mask, k, &ws, &outs);
    benchmark::DoNotOptimize(outs.data());
  }
  state.SetItemsProcessed(state.iterations() * kFillBatch);
}
BENCHMARK(BM_KnnFillBatch)
    ->Args({500, 8, 10})
    ->Args({2000, 8, 10})
    ->Args({2000, 16, 10})
    ->Args({8000, 8, 10});

void BM_KnnFillBatchReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  auto index = ReferenceKnnIndex::Build(MakeRecords(n, dim, 103)).value();
  const auto points = MakeRecords(kFillBatch, dim, 104);
  const std::vector<bool> mask = AlternatingMask(dim);
  for (auto _ : state) {
    for (const auto& p : points) {
      benchmark::DoNotOptimize(index.FillMissing(p, mask, k));
    }
  }
  state.SetItemsProcessed(state.iterations() * kFillBatch);
}
BENCHMARK(BM_KnnFillBatchReference)
    ->Args({500, 8, 10})
    ->Args({2000, 8, 10})
    ->Args({2000, 16, 10})
    ->Args({8000, 8, 10});

// One iteration = ForwardCached + Backward + SGD on one example, the unit
// of work every predictor/meta-classifier epoch repeats. Args: {input,
// hidden, output} widths (single hidden layer, the library's shape).
void BM_MlpTrainStep(benchmark::State& state) {
  MlpConfig config;
  config.layer_sizes = {static_cast<int>(state.range(0)),
                        static_cast<int>(state.range(1)),
                        static_cast<int>(state.range(2))};
  Mlp mlp(config, 7);
  MlpForwardCache cache;
  MlpGradients grads = mlp.InitGradients();
  Rng rng(105);
  std::vector<double> input(config.layer_sizes.front());
  for (double& v : input) v = rng.Normal();
  std::vector<double> dloss(config.layer_sizes.back());
  for (auto _ : state) {
    const std::vector<double>& out = mlp.ForwardCached(input, &cache);
    for (size_t i = 0; i < dloss.size(); ++i) dloss[i] = out[i] - 0.5;
    grads.Reset();
    mlp.Backward(cache, dloss, &grads);
    mlp.ApplySgd(grads, 1e-3);
    benchmark::DoNotOptimize(mlp.weights().data());
  }
}
BENCHMARK(BM_MlpTrainStep)
    ->Args({16, 32, 3})
    ->Args({18, 64, 8})
    ->Args({64, 128, 8});

}  // namespace

BENCHMARK_MAIN();
