// Exp-7 / Fig. 20: (a) MSE of the Eq. 3 marginal-reward estimation of
// model-combination accuracy for growing ensemble sizes on the
// CIFAR100-style ensemble; (b) robustness of the stacking aggregation to
// the KNN filling parameter k.

#include <cstdio>

#include "bench_util.h"
#include "core/aggregation.h"
#include "core/discrepancy.h"
#include "core/profiling.h"

using namespace schemble;
using namespace schemble::bench;

namespace {

void Fig20a() {
  std::printf("Fig. 20a: Eq. 3 estimation MSE vs measured combination "
              "accuracy (CIFAR100-style ensemble)\n");
  TextTable table({"Ensemble size", "Estimation MSE", "Naive (gamma=0) MSE"});
  for (int size : {4, 5, 6}) {
    SyntheticTask full_task = MakeCifar100StyleTask(5);
    std::vector<ModelProfile> profiles(full_task.profiles().begin(),
                                       full_task.profiles().begin() + size);
    TaskSpec spec = full_task.spec();
    SyntheticTask task(spec, profiles, 5);
    const auto history = task.GenerateDataset(
        4000, DifficultyDistribution::UniformFull(), 717);
    auto scorer = DiscrepancyScorer::Fit(task, history);
    const auto scores = scorer.value().ScoreAll(history);
    AccuracyProfile::Options options;
    options.bins = 5;
    auto profile = AccuracyProfile::Build(task, history, scores, options);

    const auto gammas = MarginalUtilityEstimator::FitGammas(profile.value());
    std::vector<double> accuracy(size);
    for (int k = 0; k < size; ++k) accuracy[k] = profiles[k].base_accuracy;
    MarginalUtilityEstimator est(size, accuracy, gammas);
    MarginalUtilityEstimator naive(
        size, accuracy, std::vector<double>(std::max(size, 3), 0.0));

    double mse = 0.0;
    double naive_mse = 0.0;
    int count = 0;
    for (int bin = 0; bin < profile.value().bins(); ++bin) {
      std::vector<double> row = profile.value().UtilityRow(
          (bin + 0.5) / profile.value().bins());
      std::vector<double> truncated(row.size(), 0.0);
      for (SubsetMask mask = 1; mask < row.size(); ++mask) {
        if (SubsetSize(mask) <= 2) truncated[mask] = row[mask];
      }
      const auto estimated = est.CompleteRow(truncated);
      const auto estimated_naive = naive.CompleteRow(truncated);
      for (SubsetMask mask = 1; mask < row.size(); ++mask) {
        if (SubsetSize(mask) < 3) continue;
        mse += (estimated[mask] - row[mask]) * (estimated[mask] - row[mask]);
        naive_mse += (estimated_naive[mask] - row[mask]) *
                     (estimated_naive[mask] - row[mask]);
        ++count;
      }
    }
    table.AddRow({std::to_string(size),
                  TextTable::Num(mse / count, 5),
                  TextTable::Num(naive_mse / count, 5)});
  }
  table.Print();
  std::printf("\n");
}

void Fig20b() {
  std::printf("Fig. 20b: stacking aggregation accuracy vs the KNN filling "
              "parameter k (text matching, strongest pair executed)\n");
  SyntheticTask task = MakeTextMatchingTask();
  const auto history = task.GenerateDataset(
      2000, DifficultyDistribution::UniformFull(), 818);
  const auto test = task.GenerateDataset(
      1500, DifficultyDistribution::Realistic(), 819, /*first_id=*/500000);
  TextTable table({"k", "Accuracy%"});
  // The whole test set shares one executed subset, so the batch path
  // amortizes mask unpacking across all 1500 queries per k.
  Aggregator::Workspace ws;
  std::vector<std::vector<double>> outs;
  for (int k : {1, 2, 5, 10, 20, 50, 100}) {
    AggregatorConfig config;
    config.kind = AggregationKind::kStacking;
    config.knn_k = k;
    auto aggregator = Aggregator::Build(task, history, config);
    aggregator.value().AggregateBatch(test, 0b110, &ws, &outs);
    double acc = 0.0;
    for (size_t i = 0; i < test.size(); ++i) {
      acc += task.MatchScore(outs[i], test[i].ensemble_output);
    }
    table.AddRow({std::to_string(k), Pct(acc / test.size())});
  }
  table.Print();
}

}  // namespace

int main() {
  Fig20a();
  Fig20b();
  return 0;
}
