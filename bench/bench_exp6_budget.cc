// Exp-6 / Fig. 16 (appendix): offline cumulative-runtime budget experiment.
// Without online arrivals, each method selects model subsets per sample
// under an average-runtime budget; we report accuracy (vs the ensemble) at
// each budget for Random, Static, Gating, Schemble*, Schemble*(ea) and
// Schemble*(Oracle).

#include <cstdio>

#include "bench_util.h"
#include "core/budgeted.h"
#include "core/discrepancy.h"

using namespace schemble;
using namespace schemble::bench;

namespace {

/// Cost of each subset in milliseconds of cumulative model runtime.
std::vector<double> SubsetCosts(const SyntheticTask& task) {
  const SubsetMask full = FullMask(task.num_models());
  std::vector<double> costs(full + 1, 0.0);
  for (SubsetMask mask = 1; mask <= full; ++mask) {
    for (int k = 0; k < task.num_models(); ++k) {
      if (mask & (SubsetMask{1} << k)) {
        costs[mask] += SimTimeToMillis(task.profile(k).latency_us);
      }
    }
  }
  return costs;
}

double Accuracy(const SyntheticTask& task, const std::vector<Query>& data,
                const std::vector<SubsetMask>& assignment) {
  double acc = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (assignment[i] == 0) continue;  // unserved -> incorrect
    const auto out = task.AggregateSubset(data[i],
                                          SubsetModels(assignment[i]));
    acc += task.MatchScore(out, data[i].ensemble_output);
  }
  return acc / static_cast<double>(data.size());
}

/// Utility rows per sample from a profile and per-sample scores.
std::vector<std::vector<double>> UtilityRows(
    const AccuracyProfile& profile, const std::vector<double>& scores) {
  std::vector<std::vector<double>> rows;
  rows.reserve(scores.size());
  for (double score : scores) rows.push_back(profile.UtilityRow(score));
  return rows;
}

void RunTask(TaskKind kind) {
  BenchContext ctx = MakeContext(kind, 20.0);
  const SyntheticTask& task = *ctx.task;
  const auto data = task.GenerateDataset(
      4000, DifficultyDistribution::Realistic(), 616, /*first_id=*/400000);
  const auto costs = SubsetCosts(task);
  const double full_cost = costs.back();

  // Score sources.
  std::vector<double> oracle_scores = ctx.pipeline->scorer().ScoreAll(data);
  std::vector<double> ea_scores = ctx.pipeline->ea_scorer().ScoreAll(data);
  std::vector<double> predicted_scores;
  predicted_scores.reserve(data.size());
  for (const Query& q : data) {
    predicted_scores.push_back(ctx.pipeline->predictor().Predict(q));
  }

  const auto rows_pred = UtilityRows(ctx.pipeline->predicted_profile(),
                                     predicted_scores);
  const auto rows_oracle = UtilityRows(ctx.pipeline->profile(),
                                       oracle_scores);
  const auto rows_ea = UtilityRows(ctx.pipeline->ea_profile(), ea_scores);

  std::printf("Fig. 16 (%s): accuracy under average-runtime budgets\n",
              TaskKindName(kind));
  TextTable table({"Budget (ms/query)", "Random", "Static", "Gating",
                   "Schemble*", "Schemble*(ea)", "Schemble*(Oracle)"});
  Rng rng(HashSeed("budget-random", 99));
  std::vector<SimTime> latency;
  for (int k = 0; k < task.num_models(); ++k) {
    latency.push_back(task.profile(k).latency_us);
  }

  for (double fraction : {0.2, 0.35, 0.5, 0.7, 0.9}) {
    const double per_query = fraction * full_cost;
    const double budget = per_query * static_cast<double>(data.size());

    // Random: add random models per sample until the budget is spent.
    std::vector<SubsetMask> random_assignment(data.size(), 0);
    {
      double spent = 0.0;
      bool progress = true;
      while (progress) {
        progress = false;
        for (size_t i = 0; i < data.size(); ++i) {
          const int k = static_cast<int>(
              rng.UniformInt(0, task.num_models() - 1));
          const SubsetMask bit = SubsetMask{1} << k;
          if (random_assignment[i] & bit) continue;
          const double extra = SimTimeToMillis(latency[k]);
          if (spent + extra > budget) continue;
          random_assignment[i] |= bit;
          spent += extra;
          progress = true;
        }
        if (spent >= budget * 0.999) break;
      }
    }

    // Static: the best fixed subset that fits the per-query budget.
    std::vector<SubsetMask> static_assignment(data.size(), 0);
    {
      SubsetMask best = 0;
      double best_utility = -1.0;
      for (SubsetMask mask = 1; mask < costs.size(); ++mask) {
        if (costs[mask] > per_query) continue;
        double utility = 0.0;
        for (size_t i = 0; i < data.size(); ++i) {
          utility += rows_oracle[i][mask];
        }
        if (utility > best_utility) {
          best_utility = utility;
          best = mask;
        }
      }
      std::fill(static_assignment.begin(), static_assignment.end(), best);
    }

    // Gating: per-sample gated subset, budget enforced by falling back to
    // the cheapest model when exceeded.
    std::vector<SubsetMask> gating_assignment(data.size(), 0);
    {
      double spent = 0.0;
      for (size_t i = 0; i < data.size(); ++i) {
        SubsetMask subset = ctx.gating->SelectSubset(data[i], latency);
        if (spent + costs[subset] > budget) subset = SubsetMask{1} << 0;
        if (spent + costs[subset] > budget) subset = 0;
        gating_assignment[i] = subset;
        spent += costs[subset];
      }
    }

    const auto schemble_assignment =
        BudgetedSelector::Select(rows_pred, costs, budget);
    const auto ea_assignment =
        BudgetedSelector::Select(rows_ea, costs, budget);
    const auto oracle_assignment =
        BudgetedSelector::Select(rows_oracle, costs, budget);

    table.AddRow({TextTable::Num(per_query, 0),
                  Pct(Accuracy(task, data, random_assignment)),
                  Pct(Accuracy(task, data, static_assignment)),
                  Pct(Accuracy(task, data, gating_assignment)),
                  Pct(Accuracy(task, data, schemble_assignment)),
                  Pct(Accuracy(task, data, ea_assignment)),
                  Pct(Accuracy(task, data, oracle_assignment))});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  RunTask(TaskKind::kTextMatching);
  RunTask(TaskKind::kVehicleCounting);
  return 0;
}
