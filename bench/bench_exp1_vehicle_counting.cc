// Exp-1 / Fig. 7 + Table I (VC column): vehicle counting with Poisson
// traffic and per-camera random deadlines, swept over the deadline mean.

#include <cstdio>

#include "bench_util.h"

using namespace schemble;
using namespace schemble::bench;

int main() {
  std::printf("Exp-1: vehicle counting, Poisson traffic, 24 cameras with "
              "Uniform per-camera deadlines\n\n");
  const double rate = 34.0;
  BenchContext ctx = MakeContext(TaskKind::kVehicleCounting, rate);

  PoissonTraffic traffic(rate);
  auto trace_factory = [&](double mean_deadline_ms) {
    const SimTime mean = MillisToSimTime(mean_deadline_ms);
    const SimTime half_width = 40 * kMillisecond;
    PerSourceUniformDeadline deadlines(24, mean - half_width,
                                       mean + half_width, /*seed=*/77);
    TraceOptions options;
    options.num_sources = 24;
    options.seed = 707;
    return BuildTrace(*ctx.task, traffic, deadlines, 120 * kSecond, options);
  };
  // Static greedy search on a pilot trace at the middle deadline.
  ctx.static_deployment =
      ChooseStaticDeploymentByPilot(ctx, trace_factory(130));

  RunDeadlineSweep(ctx, {90, 110, 130, 150, 170}, trace_factory, "Acc");
  return 0;
}
