// Exp-2 / Table II + Fig. 11/15: force-processing mode. Every query must be
// served; we report accuracy and latency (mean / P95 / max) for all three
// tasks, then compute the objective-weight crossover ranges of Fig. 11
// (c = 100 * Acc - lambda * Latency).

#include <cstdio>
#include <limits>

#include "bench_util.h"

using namespace schemble;
using namespace schemble::bench;

namespace {

struct ForcedRun {
  std::string name;
  double accuracy = 0.0;    // processed accuracy (everything is processed)
  double mean_s = 0.0;
  double p95_s = 0.0;
  double max_s = 0.0;
};

std::vector<ForcedRun> RunForced(BenchContext& ctx, const QueryTrace& trace) {
  std::vector<ForcedRun> out;
  const auto runs = RunExp1Suite(ctx, trace, /*allow_rejection=*/false);
  for (const auto& run : runs) {
    ForcedRun forced;
    forced.name = run.name;
    forced.accuracy = run.metrics.processed_accuracy();
    forced.mean_s = run.metrics.mean_latency_ms() / 1000.0;
    forced.p95_s = run.metrics.p95_latency_ms() / 1000.0;
    forced.max_s = run.metrics.max_latency_ms() / 1000.0;
    out.push_back(forced);
  }
  return out;
}

void PrintTable(const char* task_name, const std::vector<ForcedRun>& runs) {
  std::printf("Table II (%s): forced processing\n", task_name);
  TextTable table({"Policy", "Acc%", "Mean (s)", "P95 (s)", "Max (s)"});
  for (const auto& run : runs) {
    table.AddRow({run.name, Pct(run.accuracy),
                  TextTable::Num(run.mean_s, 3), TextTable::Num(run.p95_s, 3),
                  TextTable::Num(run.max_s, 3)});
  }
  table.Print();
  std::printf("\n");
}

// Fig. 11/15: the range of objective weights lambda for which Schemble's
// c = 100*Acc - lambda*Latency dominates every other policy. Schemble wins
// against policy P iff 100*(Acc_S - Acc_P) > lambda*(Lat_S - Lat_P); each
// comparison yields a one-sided bound on lambda.
void PrintTradeoffRange(const char* task_name,
                        const std::vector<ForcedRun>& runs) {
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();
  const ForcedRun* ours = nullptr;
  for (const auto& run : runs) {
    if (run.name == "Schemble") ours = &run;
  }
  for (const auto& run : runs) {
    if (&run == ours) continue;
    const double dacc = 100.0 * (ours->accuracy - run.accuracy);
    const double dlat = ours->mean_s - run.mean_s;
    if (dlat > 1e-12) {
      hi = std::min(hi, dacc / dlat);   // must not pay too much for latency
    } else if (dlat < -1e-12) {
      lo = std::max(lo, dacc / dlat);   // negative over negative
    } else if (dacc < 0.0) {
      lo = std::numeric_limits<double>::infinity();
    }
  }
  if (lo < hi) {
    std::printf("Fig. 11 (%s): Schemble has the best accuracy/latency "
                "objective for weights in (%.3f, %.1f)\n\n",
                task_name, std::max(lo, 0.0), hi);
  } else {
    std::printf("Fig. 11 (%s): no single weight range where Schemble "
                "dominates all baselines (lo=%.3f hi=%.3f)\n\n",
                task_name, lo, hi);
  }
}

void RunTask(TaskKind kind, double rate, SimTime deadline, SimTime duration) {
  BenchContext ctx = MakeContext(kind, rate * 0.5);
  PoissonTraffic traffic(rate);
  ConstantDeadline deadlines(deadline);
  TraceOptions options;
  options.seed = 909;
  const QueryTrace trace =
      BuildTrace(*ctx.task, traffic, deadlines, duration, options);
  // Static deployment from a rejection-mode pilot on the same settings.
  ctx.static_deployment = ChooseStaticDeploymentByPilot(ctx, trace);
  const auto runs = RunForced(ctx, trace);
  PrintTable(TaskKindName(kind), runs);
  PrintTradeoffRange(TaskKindName(kind), runs);
}

}  // namespace

int main() {
  // Sustained overload makes the original pipeline's queues explode while
  // selective policies stay near service latency (Table II's 500x gap).
  RunTask(TaskKind::kTextMatching, 40.0, 100 * kMillisecond, 90 * kSecond);
  RunTask(TaskKind::kVehicleCounting, 34.0, 130 * kMillisecond,
          90 * kSecond);
  RunTask(TaskKind::kImageRetrieval, 16.0, 200 * kMillisecond, 90 * kSecond);
  return 0;
}
