// Fig. 4: (a) distribution of the discrepancy score on the three
// applications; (b) accuracy of every base-model combination per score bin
// on the text-matching task.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "core/discrepancy.h"
#include "core/profiling.h"

using namespace schemble;
using namespace schemble::bench;

namespace {

void Fig4a() {
  std::printf("Fig. 4a: discrepancy-score distribution (realistic traffic, "
              "12k samples per task)\n");
  struct Row {
    const char* name;
    SyntheticTask task;
  };
  std::vector<Row> rows;
  rows.push_back({"Text matching", MakeTextMatchingTask()});
  rows.push_back({"Vehicle counting", MakeVehicleCountingTask()});
  rows.push_back({"Image retrieval", MakeImageRetrievalTask()});

  const int bins = 10;
  std::vector<std::string> headers = {"Task"};
  for (int b = 0; b < bins; ++b) {
    headers.push_back("[" + TextTable::Num(b * 0.1, 1) + "," +
                      TextTable::Num((b + 1) * 0.1, 1) + ")");
  }
  TextTable table(headers);
  for (Row& row : rows) {
    const auto history = row.task.GenerateDataset(
        12000, DifficultyDistribution::Realistic(), 404);
    auto scorer = DiscrepancyScorer::Fit(row.task, history);
    Histogram hist(0.0, 1.0, bins);
    for (const Query& q : history) hist.Add(scorer.value().Score(q));
    std::vector<std::string> cells = {row.name};
    for (int b = 0; b < bins; ++b) cells.push_back(Pct(hist.Fraction(b)));
    table.AddRow(std::move(cells));
  }
  table.Print();
  std::printf("(row entries are %% of samples per score bin)\n\n");
}

void Fig4b() {
  std::printf("Fig. 4b: accuracy (vs ensemble) of model combinations per "
              "score bin, text matching\n");
  SyntheticTask task = MakeTextMatchingTask();
  const auto history = task.GenerateDataset(
      20000, DifficultyDistribution::UniformFull(), 505);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  auto profile = AccuracyProfile::Build(task, history,
                                        scorer.value().ScoreAll(history));

  std::vector<std::string> headers = {"Combination"};
  for (int b = 0; b < profile.value().bins(); ++b) {
    headers.push_back("bin" + std::to_string(b));
  }
  TextTable table(headers);
  const char* names[] = {"",         "{BiL}",      "{RoB}",      "{BiL,RoB}",
                         "{BERT}",   "{BiL,BERT}", "{RoB,BERT}", "{all}"};
  for (SubsetMask mask = 1; mask <= FullMask(task.num_models()); ++mask) {
    std::vector<std::string> cells = {names[mask]};
    for (int b = 0; b < profile.value().bins(); ++b) {
      cells.push_back(Pct(profile.value().CellUtility(b, mask)));
    }
    table.AddRow(std::move(cells));
  }
  table.Print();
}

}  // namespace

int main() {
  Fig4a();
  Fig4b();
  return 0;
}
