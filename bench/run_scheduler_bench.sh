#!/usr/bin/env bash
# Regenerates the scheduler benchmark baseline (bench/BENCH_scheduler.json)
# from the BM_*Schedule* microbenchmarks in bench_exp5_overhead.
#
# Usage:
#   bench/run_scheduler_bench.sh [output.json]
#
# Expects build/bench/bench_exp5_overhead to exist (override with
# $BENCH_BIN), i.e. run after:
#   cmake -B build -S . && cmake --build build --target bench_exp5_overhead
# or use the one-command wrapper target:
#   cmake --build build --target schemble_bench_scheduler
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${1:-$ROOT/bench/BENCH_scheduler.json}"
BIN="${BENCH_BIN:-$ROOT/build/bench/bench_exp5_overhead}"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found/executable." >&2
  echo "build it first: cmake --build build --target bench_exp5_overhead" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter='Schedule' \
  --benchmark_out_format=json \
  --benchmark_out="$OUT" \
  "${@:2}"

echo "wrote $OUT"
