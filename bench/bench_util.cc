#include "bench_util.h"

#include <cstdio>

#include "common/logging.h"
#include "core/discrepancy.h"
#include "core/profiling.h"

namespace schemble {
namespace bench {

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kTextMatching:
      return "Text matching";
    case TaskKind::kVehicleCounting:
      return "Vehicle counting";
    case TaskKind::kImageRetrieval:
      return "Image retrieval";
  }
  return "?";
}

std::vector<int> BenchContext::StaticExecutors() const {
  std::vector<int> executors;
  for (size_t k = 0; k < static_deployment.replicas.size(); ++k) {
    for (int r = 0; r < static_deployment.replicas[k]; ++r) {
      executors.push_back(static_cast<int>(k));
    }
  }
  return executors;
}

BenchContext MakeContext(TaskKind kind, double expected_rate,
                         int history_size, uint64_t seed) {
  BenchContext ctx;
  switch (kind) {
    case TaskKind::kTextMatching:
      ctx.task = std::make_unique<SyntheticTask>(MakeTextMatchingTask(seed));
      break;
    case TaskKind::kVehicleCounting:
      ctx.task =
          std::make_unique<SyntheticTask>(MakeVehicleCountingTask(seed));
      break;
    case TaskKind::kImageRetrieval:
      ctx.task =
          std::make_unique<SyntheticTask>(MakeImageRetrievalTask(seed));
      break;
  }

  PipelineOptions pipeline_options;
  pipeline_options.history_size = history_size;
  pipeline_options.with_ensemble_agreement = true;
  pipeline_options.predictor.trainer.epochs = 25;
  pipeline_options.seed = seed + 1;
  auto pipeline = SchemblePipeline::Build(*ctx.task, pipeline_options);
  SCHEMBLE_CHECK(pipeline.ok()) << pipeline.status().ToString();
  ctx.pipeline = std::move(pipeline).value();

  auto des = DesPolicy::Train(*ctx.task, ctx.pipeline->history(), DesConfig{});
  SCHEMBLE_CHECK(des.ok()) << des.status().ToString();
  ctx.des = std::make_unique<DesPolicy>(std::move(des).value());

  GatingConfig gating_config;
  gating_config.trainer.epochs = 20;
  auto gating =
      GatingPolicy::Train(*ctx.task, ctx.pipeline->history(), gating_config);
  SCHEMBLE_CHECK(gating.ok()) << gating.status().ToString();
  ctx.gating = std::make_unique<GatingPolicy>(std::move(gating).value());

  ctx.static_deployment = ChooseStaticDeployment(
      ctx.task->profiles(), ctx.pipeline->profile(),
      TotalMemoryMb(ctx.task->profiles()), expected_rate);
  return ctx;
}

ServingMetrics RunPolicy(const SyntheticTask& task, ServingPolicy* policy,
                         const QueryTrace& trace, bool allow_rejection,
                         std::vector<int> executors,
                         SimTime segment_duration) {
  ServerOptions options;
  options.allow_rejection = allow_rejection;
  options.executor_models = std::move(executors);
  options.segment_duration = segment_duration;
  EnsembleServer server(task, policy, options);
  return server.Run(trace);
}

std::vector<PolicySuiteRun> RunExp1Suite(BenchContext& ctx,
                                         const QueryTrace& trace,
                                         bool allow_rejection,
                                         SimTime segment_duration) {
  std::vector<PolicySuiteRun> runs;
  {
    OriginalPolicy original;
    runs.push_back({original.name(),
                    RunPolicy(*ctx.task, &original, trace, allow_rejection,
                              {}, segment_duration)});
  }
  {
    StaticPolicy static_policy(ctx.static_deployment);
    runs.push_back({static_policy.name(),
                    RunPolicy(*ctx.task, &static_policy, trace,
                              allow_rejection, ctx.StaticExecutors(),
                              segment_duration)});
  }
  runs.push_back({ctx.des->name(),
                  RunPolicy(*ctx.task, ctx.des.get(), trace, allow_rejection,
                            {}, segment_duration)});
  runs.push_back({ctx.gating->name(),
                  RunPolicy(*ctx.task, ctx.gating.get(), trace,
                            allow_rejection, {}, segment_duration)});
  {
    auto ea = ctx.pipeline->MakeSchembleEa(SchembleConfig{});
    runs.push_back({ea->name(),
                    RunPolicy(*ctx.task, ea.get(), trace, allow_rejection,
                              {}, segment_duration)});
  }
  {
    auto schemble = ctx.pipeline->MakeSchemble(SchembleConfig{});
    runs.push_back({schemble->name(),
                    RunPolicy(*ctx.task, schemble.get(), trace,
                              allow_rejection, {}, segment_duration)});
  }
  return runs;
}

std::string Pct(double fraction, int precision) {
  return TextTable::Num(fraction * 100.0, precision);
}

StaticDeployment ChooseStaticDeploymentByPilot(const BenchContext& ctx,
                                               const QueryTrace& pilot) {
  const auto& profiles = ctx.task->profiles();
  const double budget = TotalMemoryMb(profiles);
  StaticDeployment best;
  double best_accuracy = -1.0;
  for (SubsetMask subset = 1; subset <= FullMask(ctx.task->num_models());
       ++subset) {
    StaticDeployment candidate = PackReplicas(profiles, subset, budget);
    if (candidate.subset == 0) continue;
    std::vector<int> executors;
    for (size_t k = 0; k < candidate.replicas.size(); ++k) {
      for (int r = 0; r < candidate.replicas[k]; ++r) {
        executors.push_back(static_cast<int>(k));
      }
    }
    StaticPolicy policy(candidate);
    const ServingMetrics metrics = RunPolicy(
        *ctx.task, &policy, pilot, /*allow_rejection=*/true, executors);
    if (metrics.accuracy() > best_accuracy) {
      best_accuracy = metrics.accuracy();
      best = candidate;
    }
  }
  return best;
}

ScoreSampledPool::ScoreSampledPool(const BenchContext& ctx, int pool_size,
                                   uint64_t seed)
    : ctx_(&ctx) {
  pool_ = ctx.task->GenerateDataset(
      pool_size, DifficultyDistribution::UniformFull(),
      HashSeed("score-pool", seed), /*first_id=*/900000);
  buckets_.assign(50, {});
  for (size_t i = 0; i < pool_.size(); ++i) {
    const double s = ctx.pipeline->scorer().Score(pool_[i]);
    buckets_[std::min<int>(49, static_cast<int>(s * 50))].push_back(
        static_cast<int>(i));
  }
}

QueryTrace ScoreSampledPool::MakeTrace(
    const DifficultyDistribution& score_distribution, double rate_per_second,
    SimTime duration, SimTime deadline, uint64_t seed) {
  Rng rng(HashSeed("score-trace", seed));
  Rng arrival_rng = rng.Fork(1);
  PoissonTraffic traffic(rate_per_second);
  const auto arrivals = traffic.GenerateArrivals(duration, arrival_rng);
  QueryTrace trace;
  trace.items.reserve(arrivals.size());
  for (SimTime when : arrivals) {
    const double target =
        std::min(0.999, score_distribution.Sample(rng));
    int bucket = std::min(49, static_cast<int>(target * 50));
    // Walk outward to the nearest non-empty bucket.
    for (int step = 0; buckets_[bucket].empty() && step < 50; ++step) {
      bucket = (bucket + 1) % 50;
    }
    SCHEMBLE_CHECK(!buckets_[bucket].empty());
    Query query = pool_[buckets_[bucket][rng.UniformInt(
        0, static_cast<int64_t>(buckets_[bucket].size()) - 1)]];
    query.id = next_id_++;
    TracedQuery tq;
    tq.query = std::move(query);
    tq.arrival_time = when;
    tq.deadline = when + deadline;
    trace.items.push_back(std::move(tq));
  }
  return trace;
}

void RunDeadlineSweep(BenchContext& ctx,
                      const std::vector<double>& deadline_labels_ms,
                      const std::function<QueryTrace(double)>& trace_factory,
                      const char* metric_name) {
  std::vector<std::string> policy_names;
  std::vector<double> acc_sums;
  std::vector<double> dmr_sums;

  for (double deadline_ms : deadline_labels_ms) {
    const QueryTrace trace = trace_factory(deadline_ms);
    const auto runs = RunExp1Suite(ctx, trace);
    std::printf("Deadline %.0f ms (%lld queries)\n", deadline_ms,
                static_cast<long long>(trace.size()));
    TextTable table({"Policy", std::string(metric_name) + "%", "DMR%"});
    for (size_t p = 0; p < runs.size(); ++p) {
      table.AddRow({runs[p].name, Pct(runs[p].metrics.accuracy()),
                    Pct(runs[p].metrics.deadline_miss_rate())});
      if (policy_names.size() <= p) {
        policy_names.push_back(runs[p].name);
        acc_sums.push_back(0.0);
        dmr_sums.push_back(0.0);
      }
      acc_sums[p] += runs[p].metrics.accuracy();
      dmr_sums[p] += runs[p].metrics.deadline_miss_rate();
    }
    table.Print();
    std::printf("\n");
  }

  std::printf("Table I (averages over deadline settings)\n");
  TextTable table({"Policy", std::string(metric_name) + "%", "DMR%"});
  const double n = static_cast<double>(deadline_labels_ms.size());
  for (size_t p = 0; p < policy_names.size(); ++p) {
    table.AddRow({policy_names[p], Pct(acc_sums[p] / n),
                  Pct(dmr_sums[p] / n)});
  }
  table.Print();
}

}  // namespace bench
}  // namespace schemble
