# Declares one bench executable per paper table/figure. Included from the
# top-level CMakeLists so that ${CMAKE_BINARY_DIR}/bench contains only the
# executables (no CMake bookkeeping files), making
# `for b in build/bench/*; do $b; done` run cleanly.

set(SCHEMBLE_BENCH_OUTPUT_DIR ${CMAKE_BINARY_DIR}/bench)

function(schemble_add_bench name)
  add_executable(${name} ${ARGN})
  target_link_libraries(${name} PRIVATE
    schemble_serving schemble_baselines schemble_core schemble_workload
    schemble_models schemble_simcore schemble_nn schemble_common
    benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${SCHEMBLE_BENCH_OUTPUT_DIR})
endfunction()

schemble_add_bench(bench_fig1_motivation bench/bench_fig1_motivation.cc bench/bench_util.cc)
schemble_add_bench(bench_fig4_discrepancy bench/bench_fig4_discrepancy.cc bench/bench_util.cc)
schemble_add_bench(bench_fig5_preference_corr bench/bench_fig5_preference_corr.cc bench/bench_util.cc)
schemble_add_bench(bench_exp1_text_matching bench/bench_exp1_text_matching.cc bench/bench_util.cc)
schemble_add_bench(bench_exp1_vehicle_counting bench/bench_exp1_vehicle_counting.cc bench/bench_util.cc)
schemble_add_bench(bench_exp1_image_retrieval bench/bench_exp1_image_retrieval.cc bench/bench_util.cc)
schemble_add_bench(bench_exp2_latency bench/bench_exp2_latency.cc bench/bench_util.cc)
schemble_add_bench(bench_exp2_segments bench/bench_exp2_segments.cc bench/bench_util.cc)
schemble_add_bench(bench_exp3_distributions bench/bench_exp3_distributions.cc bench/bench_util.cc)
schemble_add_bench(bench_exp4_scheduler bench/bench_exp4_scheduler.cc bench/bench_util.cc)
schemble_add_bench(bench_exp5_overhead bench/bench_exp5_overhead.cc bench/bench_util.cc)
schemble_add_bench(bench_exp6_budget bench/bench_exp6_budget.cc bench/bench_util.cc)
schemble_add_bench(bench_exp7_profiling_knn bench/bench_exp7_profiling_knn.cc bench/bench_util.cc)
schemble_add_bench(bench_exp8_delta bench/bench_exp8_delta.cc bench/bench_util.cc)
schemble_add_bench(bench_ext_large_ensemble bench/bench_ext_large_ensemble.cc bench/bench_util.cc)

# Wall-clock runtime scaling (no google-benchmark: it measures whole-run
# makespan across worker counts and enforces the >2x-at-4-workers bar).
schemble_add_bench(bench_runtime bench/bench_runtime.cc)
target_link_libraries(bench_runtime PRIVATE schemble_runtime)

# Numeric-kernel microbenchmarks (flat KNN vs reference, MLP train step);
# baseline pinned in bench/BENCH_nn.json via bench/run_nn_bench.sh.
schemble_add_bench(bench_nn bench/bench_nn.cc)

# `cmake --build build --target schemble_bench_scheduler` rebuilds the
# scheduler microbenchmarks and regenerates the committed baseline
# bench/BENCH_scheduler.json in one command.
add_custom_target(schemble_bench_scheduler
  COMMAND ${CMAKE_COMMAND} -E env BENCH_BIN=$<TARGET_FILE:bench_exp5_overhead>
          ${CMAKE_SOURCE_DIR}/bench/run_scheduler_bench.sh
  DEPENDS bench_exp5_overhead
  WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
  COMMENT "Running scheduler benchmarks -> bench/BENCH_scheduler.json"
  VERBATIM)

# Same one-command wrapper for the concurrent-runtime baseline
# (worker scaling + Schemble-pressure lock contention).
add_custom_target(schemble_bench_runtime
  COMMAND ${CMAKE_COMMAND} -E env BENCH_BIN=$<TARGET_FILE:bench_runtime>
          ${CMAKE_SOURCE_DIR}/bench/run_runtime_bench.sh
  DEPENDS bench_runtime
  WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
  COMMENT "Running runtime benchmarks -> bench/BENCH_runtime.json"
  VERBATIM)

# Same one-command wrapper for the numeric-kernel baseline.
add_custom_target(schemble_bench_nn
  COMMAND ${CMAKE_COMMAND} -E env BENCH_BIN=$<TARGET_FILE:bench_nn>
          ${CMAKE_SOURCE_DIR}/bench/run_nn_bench.sh
  DEPENDS bench_nn
  WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
  COMMENT "Running numeric-kernel benchmarks -> bench/BENCH_nn.json"
  VERBATIM)
