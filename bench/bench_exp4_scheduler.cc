// Exp-4 / Fig. 12, 17, 18, 19: scheduling-algorithm comparison with the
// discrepancy module fixed — Greedy with EDF/FIFO/SJF orders versus the DP
// scheduler at quantization steps 0.1 / 0.01 / 0.001 — swept over deadlines
// on all three tasks, plus the bursty-period drill-down (Fig. 19).

#include <cstdio>

#include "bench_util.h"

using namespace schemble;
using namespace schemble::bench;

namespace {

std::vector<std::pair<std::string, SchembleConfig>> SchedulerVariants() {
  std::vector<std::pair<std::string, SchembleConfig>> variants;
  auto add = [&](const std::string& name, BufferScheduler scheduler,
                 double delta) {
    SchembleConfig config;
    config.name = name;
    config.scheduler = scheduler;
    config.dp.delta = delta;
    variants.emplace_back(name, std::move(config));
  };
  add("Greedy+EDF", BufferScheduler::kGreedyEdf, 0.01);
  add("Greedy+FIFO", BufferScheduler::kGreedyFifo, 0.01);
  add("Greedy+SJF", BufferScheduler::kGreedySjf, 0.01);
  add("DP(0.1)", BufferScheduler::kDp, 0.1);
  add("DP(0.01)", BufferScheduler::kDp, 0.01);
  add("DP(0.001)", BufferScheduler::kDp, 0.001);
  return variants;
}

void RunSweep(const char* figure, BenchContext& ctx,
              const std::vector<double>& deadlines_ms,
              const std::function<QueryTrace(double)>& trace_factory) {
  std::printf("%s: scheduler comparison\n", figure);
  const auto variants = SchedulerVariants();
  std::vector<std::string> headers = {"Deadline(ms)"};
  for (const auto& [name, config] : variants) headers.push_back(name);
  TextTable acc_table(headers);
  TextTable dmr_table(headers);
  for (double deadline_ms : deadlines_ms) {
    const QueryTrace trace = trace_factory(deadline_ms);
    std::vector<std::string> acc_cells = {TextTable::Num(deadline_ms, 0)};
    std::vector<std::string> dmr_cells = {TextTable::Num(deadline_ms, 0)};
    for (const auto& [name, config] : variants) {
      auto policy = ctx.pipeline->MakeSchemble(config);
      const ServingMetrics metrics =
          RunPolicy(*ctx.task, policy.get(), trace);
      acc_cells.push_back(Pct(metrics.accuracy()));
      dmr_cells.push_back(Pct(metrics.deadline_miss_rate()));
    }
    acc_table.AddRow(std::move(acc_cells));
    dmr_table.AddRow(std::move(dmr_cells));
  }
  std::printf("Accuracy%%\n");
  acc_table.Print();
  std::printf("DMR%%\n");
  dmr_table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  // Fig. 12: text matching under the bursty one-day trace.
  {
    const double peak_rate = 85.0;
    BenchContext ctx = MakeContext(TaskKind::kTextMatching, peak_rate * 0.45);
    DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(
        peak_rate, /*segment_duration=*/15 * kSecond);
    auto factory = [&](double deadline_ms) {
      ConstantDeadline deadlines(MillisToSimTime(deadline_ms));
      TraceOptions options;
      options.seed = 333;
      return BuildTrace(*ctx.task, traffic, deadlines,
                        traffic.total_duration(), options);
    };
    RunSweep("Fig. 12 (text matching)", ctx, {80, 100, 120, 140}, factory);

    // Fig. 19: the bursty window only (hours 10-18 of the day shape).
    std::printf("Fig. 19: bursty period (hours 10-18), 100 ms deadlines\n");
    const QueryTrace full = factory(100);
    QueryTrace burst;
    const SimTime lo = 10 * 15 * kSecond;
    const SimTime hi = 18 * 15 * kSecond;
    for (const TracedQuery& tq : full.items) {
      if (tq.arrival_time >= lo && tq.arrival_time < hi) {
        burst.items.push_back(tq);
      }
    }
    TextTable table({"Scheduler", "Acc%", "DMR%"});
    for (const auto& [name, config] : SchedulerVariants()) {
      auto policy = ctx.pipeline->MakeSchemble(config);
      const ServingMetrics metrics = RunPolicy(*ctx.task, policy.get(), burst);
      table.AddRow({name, Pct(metrics.accuracy()),
                    Pct(metrics.deadline_miss_rate())});
    }
    table.Print();
    std::printf("\n");
  }

  // Fig. 17: vehicle counting.
  {
    BenchContext ctx = MakeContext(TaskKind::kVehicleCounting, 20.0);
    PoissonTraffic traffic(34.0);
    auto factory = [&](double deadline_ms) {
      const SimTime mean = MillisToSimTime(deadline_ms);
      PerSourceUniformDeadline deadlines(24, mean - 40 * kMillisecond,
                                         mean + 40 * kMillisecond, 77);
      TraceOptions options;
      options.num_sources = 24;
      options.seed = 444;
      return BuildTrace(*ctx.task, traffic, deadlines, 90 * kSecond, options);
    };
    RunSweep("Fig. 17 (vehicle counting)", ctx, {90, 120, 150}, factory);
  }

  // Fig. 18: image retrieval.
  {
    BenchContext ctx = MakeContext(TaskKind::kImageRetrieval, 10.0);
    PoissonTraffic traffic(16.0);
    auto factory = [&](double deadline_ms) {
      ConstantDeadline deadlines(MillisToSimTime(deadline_ms));
      TraceOptions options;
      options.seed = 555;
      return BuildTrace(*ctx.task, traffic, deadlines, 90 * kSecond, options);
    };
    RunSweep("Fig. 18 (image retrieval)", ctx, {120, 170, 220}, factory);
  }
  return 0;
}
