// Fig. 5: correlation matrix of models' preference vectors across
// architectures and training seeds on the CIFAR100-style ensemble, with the
// discrepancy score added for comparison. The paper's finding: preferences
// correlate poorly across seeds (deep preferences are noise) while the
// discrepancy score is stable.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "core/discrepancy.h"

using namespace schemble;
using namespace schemble::bench;

int main() {
  // Two instances of the same six-architecture ensemble trained with
  // different seeds, evaluated on the same query set.
  SyntheticTask seed_a = MakeCifar100StyleTask(9, /*model_seed=*/1111);
  SyntheticTask seed_b = MakeCifar100StyleTask(9, /*model_seed=*/2222);
  const int n = 4000;
  const auto data_a =
      seed_a.GenerateDataset(n, DifficultyDistribution::UniformFull(), 33);
  const auto data_b =
      seed_b.GenerateDataset(n, DifficultyDistribution::UniformFull(), 33);

  auto scorer_a = DiscrepancyScorer::Fit(seed_a, data_a);
  auto scorer_b = DiscrepancyScorer::Fit(seed_b, data_b);

  const int m = seed_a.num_models();
  // Preference vectors: per model, d(f_k(x_i), E(x_i)) over the dataset;
  // the last column is the discrepancy score itself.
  auto preferences = [&](const SyntheticTask&,
                         const std::vector<Query>& data,
                         const DiscrepancyScorer& scorer) {
    std::vector<std::vector<double>> prefs(m + 1, std::vector<double>(n));
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < m; ++k) {
        prefs[k][i] = scorer.ModelDistance(data[i], k);
      }
      prefs[m][i] = scorer.Score(data[i]);
    }
    return prefs;
  };
  const auto prefs_a = preferences(seed_a, data_a, scorer_a.value());
  const auto prefs_b = preferences(seed_b, data_b, scorer_b.value());

  std::printf("Fig. 5: correlation of per-model preferences across training "
              "seeds (diagonal of the paper's matrix)\n");
  TextTable table({"Quantity", "corr(seed1, seed2)"});
  double mean_model_corr = 0.0;
  for (int k = 0; k < m; ++k) {
    const double corr = PearsonCorrelation(prefs_a[k], prefs_b[k]);
    mean_model_corr += corr / m;
    table.AddRow({seed_a.profile(k).name, TextTable::Num(corr, 3)});
  }
  const double dis_corr = PearsonCorrelation(prefs_a[m], prefs_b[m]);
  table.AddRow({"Discrepancy score", TextTable::Num(dis_corr, 3)});
  table.Print();
  std::printf("Mean per-model preference correlation: %.3f; discrepancy "
              "score correlation: %.3f\n\n",
              mean_model_corr, dis_corr);

  std::printf("Cross-architecture preference correlations within one seed "
              "(off-diagonal of the paper's matrix)\n");
  std::vector<std::string> headers = {"Model"};
  for (int k = 0; k < m; ++k) headers.push_back(seed_a.profile(k).name);
  TextTable matrix(headers);
  for (int a = 0; a < m; ++a) {
    std::vector<std::string> cells = {seed_a.profile(a).name};
    for (int b = 0; b < m; ++b) {
      cells.push_back(
          TextTable::Num(PearsonCorrelation(prefs_a[a], prefs_a[b]), 2));
    }
    matrix.AddRow(std::move(cells));
  }
  matrix.Print();
  return 0;
}
