// Exp-8 / Fig. 21: quantization step delta — scheduling overhead versus
// serving quality. Smaller delta gives plans closer to optimal but the DP
// table grows ~1/delta, and the charged overhead starts to eat into the
// inference timeline.

#include <cstdio>

#include "bench_util.h"

using namespace schemble;
using namespace schemble::bench;

namespace {

void RunTask(TaskKind kind, double peak_rate, SimTime deadline) {
  BenchContext ctx = MakeContext(kind, peak_rate * 0.45);
  DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(
      peak_rate, /*segment_duration=*/15 * kSecond);
  ConstantDeadline deadlines(deadline);
  TraceOptions options;
  options.seed = 929;
  const QueryTrace trace = BuildTrace(*ctx.task, traffic, deadlines,
                                      traffic.total_duration(), options);

  std::printf("Fig. 21 (%s, %.0f ms deadlines)\n", TaskKindName(kind),
              SimTimeToMillis(deadline));
  TextTable table({"delta", "Acc%", "DMR%", "Scheduler runs",
                   "Total overhead (ms)", "Mean overhead/run (us)"});
  for (double delta : {0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001}) {
    SchembleConfig config;
    config.dp.delta = delta;
    auto policy = ctx.pipeline->MakeSchemble(config);
    const ServingMetrics metrics = RunPolicy(*ctx.task, policy.get(), trace);
    const double runs = static_cast<double>(policy->scheduler_runs());
    table.AddRow(
        {TextTable::Num(delta, 3), Pct(metrics.accuracy()),
         Pct(metrics.deadline_miss_rate()),
         TextTable::Num(runs, 0),
         TextTable::Num(SimTimeToMillis(policy->total_overhead_us()), 1),
         TextTable::Num(runs > 0 ? policy->total_overhead_us() / runs : 0.0,
                        1)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

void RunDeepBufferTask() {
  // Long deadlines admit deep buffers, so the DP table (~ N^2/delta cells)
  // gets large; at delta = 0.001 the charged scheduling time becomes
  // comparable to inter-arrival gaps and starts costing accuracy -- the
  // paper's overhead-driven degradation.
  BenchContext ctx = MakeContext(TaskKind::kTextMatching, 30.0);
  PoissonTraffic traffic(70.0);
  ConstantDeadline deadlines(250 * kMillisecond);
  TraceOptions options;
  options.seed = 939;
  const QueryTrace trace =
      BuildTrace(*ctx.task, traffic, deadlines, 30 * kSecond, options);

  std::printf("Fig. 21 (text matching, sustained 70 qps overload, 250 ms "
              "deadlines, deep buffers, slow scheduling host)\n");
  TextTable table({"delta", "Acc%", "DMR%", "Scheduler runs",
                   "Total overhead (ms)", "Mean overhead/run (us)"});
  for (double delta : {0.1, 0.01, 0.001}) {
    SchembleConfig config;
    config.dp.delta = delta;
    config.dp.max_queries = 12;
    // A scheduling host ~5x slower than the default, as on the paper's
    // 2016-era testbed CPU; makes the table-size cost visible.
    config.scheduler_ops_per_us = 40.0;
    auto policy = ctx.pipeline->MakeSchemble(config);
    const ServingMetrics metrics = RunPolicy(*ctx.task, policy.get(), trace);
    const double runs = static_cast<double>(policy->scheduler_runs());
    table.AddRow(
        {TextTable::Num(delta, 3), Pct(metrics.accuracy()),
         Pct(metrics.deadline_miss_rate()),
         TextTable::Num(runs, 0),
         TextTable::Num(SimTimeToMillis(policy->total_overhead_us()), 1),
         TextTable::Num(runs > 0 ? policy->total_overhead_us() / runs : 0.0,
                        1)});
  }
  table.Print();
  std::printf("\n");
}

int main() {
  RunTask(TaskKind::kTextMatching, 85.0, 100 * kMillisecond);
  RunTask(TaskKind::kVehicleCounting, 60.0, 120 * kMillisecond);
  RunDeepBufferTask();
  return 0;
}
