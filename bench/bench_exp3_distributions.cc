// Exp-3 / Fig. 10: how the distribution of the queries' discrepancy scores
// affects each method. Following the paper's protocol, traces are resampled
// from a pool *by ground-truth discrepancy score* so that the score
// distribution is Normal / Gamma with swept means (stddev 0.03 / scale 1 in
// the paper; we keep stddev 0.03 and a comparable Gamma). Deadlines are
// fixed at 105 ms. Schemble(t) — no difficulty prediction — isolates the
// first module's contribution.

#include <cstdio>

#include "bench_util.h"

using namespace schemble;
using namespace schemble::bench;

namespace {

void RunDistribution(BenchContext& ctx, ScoreSampledPool& pool,
                     const char* dist_name,
                     const std::function<DifficultyDistribution(double)>&
                         make_distribution,
                     const std::vector<double>& means) {
  std::printf("Fig. 10 (%s score distributions, 105 ms deadlines)\n",
              dist_name);
  std::vector<std::string> names;
  std::vector<std::vector<double>> acc_rows;
  std::vector<std::vector<double>> processed_rows;
  for (double mean : means) {
    const QueryTrace trace = pool.MakeTrace(
        make_distribution(mean), /*rate=*/40.0, /*duration=*/90 * kSecond,
        /*deadline=*/105 * kMillisecond,
        /*seed=*/static_cast<uint64_t>(1000 + mean * 100));
    auto runs = RunExp1Suite(ctx, trace);
    {
      auto schemble_t = ctx.pipeline->MakeSchembleT(SchembleConfig{});
      runs.push_back({schemble_t->name(),
                      RunPolicy(*ctx.task, schemble_t.get(), trace)});
    }
    if (names.empty()) {
      for (const auto& run : runs) names.push_back(run.name);
    }
    std::vector<double> acc;
    std::vector<double> processed;
    for (const auto& run : runs) {
      acc.push_back(run.metrics.accuracy());
      processed.push_back(run.metrics.processed_accuracy());
    }
    acc_rows.push_back(std::move(acc));
    processed_rows.push_back(std::move(processed));
  }

  std::vector<std::string> headers = {"Mean"};
  for (const auto& name : names) headers.push_back(name);
  std::printf("Accuracy%% (missed queries count as incorrect)\n");
  TextTable acc_table(headers);
  for (size_t i = 0; i < means.size(); ++i) {
    std::vector<std::string> cells = {TextTable::Num(means[i], 2)};
    for (double v : acc_rows[i]) cells.push_back(Pct(v));
    acc_table.AddRow(std::move(cells));
  }
  acc_table.Print();
  std::printf("Processed accuracy%% (missed queries ignored)\n");
  TextTable processed_table(headers);
  for (size_t i = 0; i < means.size(); ++i) {
    std::vector<std::string> cells = {TextTable::Num(means[i], 2)};
    for (double v : processed_rows[i]) cells.push_back(Pct(v));
    processed_table.AddRow(std::move(cells));
  }
  processed_table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  BenchContext ctx = MakeContext(TaskKind::kTextMatching, 20.0);
  ScoreSampledPool pool(ctx, /*pool_size=*/30000, /*seed=*/4242);
  {
    // Static greedy search on a representative pilot trace.
    ctx.static_deployment = ChooseStaticDeploymentByPilot(
        ctx,
        pool.MakeTrace(DifficultyDistribution::NormalWithMean(0.4, 0.15),
                       40.0, 40 * kSecond, 105 * kMillisecond, 221));
  }
  RunDistribution(
      ctx, pool, "Normal",
      [](double mean) {
        return DifficultyDistribution::NormalWithMean(mean, 0.03);
      },
      {0.1, 0.3, 0.5, 0.7, 0.9});
  RunDistribution(
      ctx, pool, "Gamma",
      [](double mean) {
        return DifficultyDistribution::GammaWithMean(mean, 0.1);
      },
      {0.1, 0.3, 0.5, 0.7, 0.9});
  // Appendix variants: uniform spread and a wider normal.
  RunDistribution(
      ctx, pool, "Normal (sigma 0.15)",
      [](double mean) {
        return DifficultyDistribution::NormalWithMean(mean, 0.15);
      },
      {0.3, 0.5, 0.7});
  return 0;
}
