#ifndef SCHEMBLE_BENCH_BENCH_UTIL_H_
#define SCHEMBLE_BENCH_BENCH_UTIL_H_

// Shared setup for the per-table/figure bench harnesses: builds one task's
// full serving stack (pipeline + all baselines) so every bench reproduces
// the paper's rows from the same trained components.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/des_policy.h"
#include "baselines/gating_policy.h"
#include "baselines/original_policy.h"
#include "baselines/static_policy.h"
#include "common/table.h"
#include "models/task_factory.h"
#include "serving/pipeline.h"
#include "serving/server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

namespace schemble {
namespace bench {

enum class TaskKind { kTextMatching, kVehicleCounting, kImageRetrieval };

const char* TaskKindName(TaskKind kind);

/// One task's trained serving stack.
struct BenchContext {
  std::unique_ptr<SyntheticTask> task;
  std::unique_ptr<SchemblePipeline> pipeline;
  std::unique_ptr<DesPolicy> des;
  std::unique_ptr<GatingPolicy> gating;
  StaticDeployment static_deployment;

  /// Executor list implementing the static deployment (replicas included).
  std::vector<int> StaticExecutors() const;
};

/// Builds the context; `expected_rate` feeds the static deployment search.
BenchContext MakeContext(TaskKind kind, double expected_rate,
                         int history_size = 4000, uint64_t seed = 2024);

/// Runs `policy` on `trace` against the default one-executor-per-model
/// deployment (or `executors` when non-empty).
ServingMetrics RunPolicy(const SyntheticTask& task, ServingPolicy* policy,
                         const QueryTrace& trace, bool allow_rejection = true,
                         std::vector<int> executors = {},
                         SimTime segment_duration = 60 * kSecond);

/// The six-policy comparison suite of Exp-1 (fresh Schemble policies per
/// call so per-run overhead counters start clean).
struct PolicySuiteRun {
  std::string name;
  ServingMetrics metrics;
};
std::vector<PolicySuiteRun> RunExp1Suite(BenchContext& ctx,
                                         const QueryTrace& trace,
                                         bool allow_rejection = true,
                                         SimTime segment_duration =
                                             60 * kSecond);

/// Percentage formatting shorthand.
std::string Pct(double fraction, int precision = 1);

/// The paper's static greedy search, done honestly: every subset (with
/// replica packing into the memory budget) is evaluated by a pilot serving
/// simulation; the deployment with the best overall accuracy wins.
StaticDeployment ChooseStaticDeploymentByPilot(const BenchContext& ctx,
                                               const QueryTrace& pilot);

/// A pool of queries bucketed by ground-truth discrepancy score, used to
/// resample traces whose *score* distribution matches a target (the
/// protocol of Exp-3: "we sample data based on their true discrepancy
/// scores").
class ScoreSampledPool {
 public:
  ScoreSampledPool(const BenchContext& ctx, int pool_size, uint64_t seed);

  /// Builds a trace whose queries' true scores follow the given
  /// distribution, with Poisson arrivals and constant deadlines. Sampled
  /// queries get fresh unique ids.
  QueryTrace MakeTrace(const DifficultyDistribution& score_distribution,
                       double rate_per_second, SimTime duration,
                       SimTime deadline, uint64_t seed);

 private:
  const BenchContext* ctx_;
  std::vector<Query> pool_;
  std::vector<std::vector<int>> buckets_;
  int64_t next_id_ = 5000000;
};

/// Exp-1 driver: sweeps deadline settings, runs the six-policy suite on
/// each trace, prints the Fig. 6/7/8 series and the Table I averages.
/// `metric_name` labels the accuracy column ("Acc" or "mAP").
void RunDeadlineSweep(BenchContext& ctx,
                      const std::vector<double>& deadline_labels_ms,
                      const std::function<QueryTrace(double)>& trace_factory,
                      const char* metric_name);

}  // namespace bench
}  // namespace schemble

#endif  // SCHEMBLE_BENCH_BENCH_UTIL_H_
