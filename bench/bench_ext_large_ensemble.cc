// Extension experiment (paper §V-D): serving a *six-model* ensemble, where
// exhaustively profiling all 63 combinations is expensive. We compare
// Schemble driven by (a) the fully profiled utility table and (b) the table
// whose size>2 cells come from the Eq. 3 marginal-reward estimator, plus
// the query-buffer ablation (DESIGN.md decision 5).

#include <cstdio>

#include "bench_util.h"
#include "core/discrepancy.h"
#include "core/profiling.h"
#include "core/schemble_policy.h"

using namespace schemble;
using namespace schemble::bench;

int main() {
  SyntheticTask task = MakeCifar100StyleTask(2026);

  // Offline phase by hand (the pipeline helper targets the serving tasks).
  const auto history =
      task.GenerateDataset(4000, DifficultyDistribution::UniformFull(), 7);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  const auto scores = scorer.value().ScoreAll(history);
  AccuracyProfile::Options options;
  options.bins = 8;
  auto full_profile = AccuracyProfile::Build(task, history, scores, options);

  const auto gammas = MarginalUtilityEstimator::FitGammas(full_profile.value());
  std::vector<double> accuracy(task.num_models());
  for (int k = 0; k < task.num_models(); ++k) {
    accuracy[k] = task.profile(k).base_accuracy;
  }
  MarginalUtilityEstimator estimator(task.num_models(), accuracy, gammas);
  const AccuracyProfile estimated_profile =
      full_profile.value().CompletedWith(estimator);

  // Traffic: the six classifiers total ~91 ms of work per full fan-out;
  // push past the fan-out capacity.
  PoissonTraffic traffic(180.0);
  ConstantDeadline deadlines(45 * kMillisecond);
  TraceOptions trace_options;
  trace_options.seed = 11;
  const QueryTrace trace =
      BuildTrace(task, traffic, deadlines, 60 * kSecond, trace_options);
  std::printf("Six-model CIFAR100-style ensemble, %lld queries, 45 ms "
              "deadlines\n",
              static_cast<long long>(trace.size()));

  TextTable table({"Variant", "Acc%", "DMR%"});
  auto report = [&](const char* name, const AccuracyProfile& profile,
                    bool use_buffer) {
    SchembleConfig config;
    config.name = name;
    config.score_source = ScoreSource::kOracle;
    config.use_buffer = use_buffer;
    // Six models: keep the DP window modest.
    config.dp.max_queries = 12;
    SchemblePolicy policy(task, profile, nullptr, &scorer.value(), config);
    const ServingMetrics metrics = RunPolicy(task, &policy, trace);
    table.AddRow({name, Pct(metrics.accuracy()),
                  Pct(metrics.deadline_miss_rate())});
  };
  report("Schemble (full profile)", full_profile.value(), true);
  report("Schemble (Eq. 3 estimated profile)", estimated_profile, true);
  report("Schemble (no query buffer)", full_profile.value(), false);
  table.Print();
  std::printf(
      "\nThe estimated profile needs only the %d singleton+pairwise cells "
      "per bin instead of %d.\n",
      task.num_models() + task.num_models() * (task.num_models() - 1) / 2,
      (1 << task.num_models()) - 1);
  return 0;
}
