// Wall-clock benchmarks of the concurrent runtime, in two parts:
//
//  1. Throughput scaling: one base model (RoBERTa, 45 ms) replicated
//     across 1..8 executors, a saturating open-loop arrival stream, force
//     mode (every query processed). Reported throughput is completed
//     queries per second of runtime wall time; the acceptance bar is >2x
//     at 4 workers vs 1. Service consumption sleeps on the OS timer
//     (accelerator-offloaded inference), so scaling tracks executor
//     parallelism rather than host core count.
//
//  2. Policy critical-section pressure: the full Schemble policy (oracle
//     scores, DP scheduler) under sustained overload, where every
//     scheduling round used to solve the DP inside the policy mutex.
//     lock_held_ms is the headline number the snapshot-planning runtime
//     drives down (EXPERIMENTS.md Exp-9).
//
// With --json=PATH the results are also written in google-benchmark JSON
// format so bench/check_regression.py can compare runs against the pinned
// bench/BENCH_runtime.json baseline (see bench/run_runtime_bench.sh).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/static_policy.h"
#include "common/table.h"
#include "core/discrepancy.h"
#include "core/schemble_policy.h"
#include "models/task_factory.h"
#include "runtime/concurrent_server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

namespace schemble {
namespace {

// Every query runs exactly one task on model 1 (the 45 ms RoBERTa).
constexpr SubsetMask kSubset = 0b010;
constexpr int kModel = 1;

struct ScalingPoint {
  int workers = 0;
  double wall_seconds = 0.0;
  double throughput_qps = 0.0;
  double mean_latency_ms = 0.0;
  ConcurrentServer::LockStatsSnapshot lock;
  ConcurrentServer::SchedulerStatsSnapshot sched;
  /// Queries replayed by each arrival pump (size = num_arrival_threads).
  std::vector<int64_t> pump_routed;
};

/// One row of the eventual JSON report: google-benchmark's per-iteration
/// schema, with cpu_time/real_time carrying the headline metric in
/// microseconds and everything else attached as custom counters.
struct JsonEntry {
  std::string name;
  double value_us = 0.0;
  std::vector<std::pair<std::string, double>> counters;
};

ScalingPoint RunOnce(const SyntheticTask& task, const QueryTrace& trace,
                     int workers, double speedup, int domains = 1,
                     int pumps = 1, int inbox_capacity = 0,
                     int queue_capacity = 0) {
  StaticDeployment deployment;
  deployment.subset = kSubset;
  deployment.replicas = {0, workers, 0};
  // One policy instance per scheduler domain (stateful calls are
  // serialized per domain); the deployment itself is shared and const.
  std::vector<StaticPolicy> policies;
  policies.reserve(static_cast<size_t>(domains));
  std::vector<ServingPolicy*> policy_ptrs;
  for (int d = 0; d < domains; ++d) {
    policies.emplace_back(deployment);
  }
  for (StaticPolicy& policy : policies) {
    policy_ptrs.push_back(&policy);
  }

  ConcurrentServerOptions options;
  options.executor_models.assign(static_cast<size_t>(workers), kModel);
  options.allow_rejection = false;
  options.speedup = speedup;
  options.num_domains = domains;
  options.routing = RoutingPolicyKind::kLeastLoaded;
  options.num_arrival_threads = pumps;
  if (inbox_capacity > 0) options.inbox_capacity = inbox_capacity;
  if (queue_capacity > 0) options.queue_capacity = queue_capacity;
  ConcurrentServer server(task, std::move(policy_ptrs), options);

  SteadyClock wall(1.0);
  const SimTime start = wall.Now();
  const ServingMetrics metrics = server.Run(trace);
  const double seconds = SimTimeToSeconds(wall.Now() - start);

  ScalingPoint point;
  point.workers = workers;
  point.wall_seconds = seconds;
  point.throughput_qps = static_cast<double>(metrics.processed) / seconds;
  point.mean_latency_ms = metrics.mean_latency_ms();
  point.lock = server.lock_stats();
  point.sched = server.scheduler_stats();
  for (int p = 0; p < server.num_arrival_pumps(); ++p) {
    point.pump_routed.push_back(server.pump_routed(p));
  }
  return point;
}

/// The policy-pressure scenario: Schemble with oracle scores and the DP
/// buffer scheduler, three-model ensemble, rejection mode, arrival rate
/// ~2x the bottleneck capacity so the buffer stays populated and the
/// scheduler plans continuously.
struct SchemblePoint {
  double wall_seconds = 0.0;
  double processed_fraction = 0.0;
  int64_t scheduler_runs = 0;
  ConcurrentServer::LockStatsSnapshot lock;
  ConcurrentServer::SchedulerStatsSnapshot sched;
};

SchemblePoint RunSchemble(double speedup) {
  const SyntheticTask task = MakeTextMatchingTask(3);
  const auto history =
      task.GenerateDataset(2000, DifficultyDistribution::UniformFull(), 5);
  auto scorer_result = DiscrepancyScorer::Fit(task, history);
  SCHEMBLE_CHECK(scorer_result.ok());
  const DiscrepancyScorer scorer = std::move(scorer_result).value();
  auto profile_result =
      AccuracyProfile::Build(task, history, scorer.ScoreAll(history));
  SCHEMBLE_CHECK(profile_result.ok());
  const AccuracyProfile profile = std::move(profile_result).value();

  SchembleConfig config;
  config.score_source = ScoreSource::kOracle;
  SchemblePolicy policy(task, profile, nullptr, &scorer, std::move(config));

  ConcurrentServerOptions options;
  options.speedup = speedup;
  ConcurrentServer server(task, &policy, options);

  PoissonTraffic traffic(45.0);
  ConstantDeadline deadlines(300 * kMillisecond);
  TraceOptions trace_options;
  trace_options.seed = 17;
  const QueryTrace trace =
      BuildTrace(task, traffic, deadlines, 20 * kSecond, trace_options);

  SteadyClock wall(1.0);
  const SimTime start = wall.Now();
  const ServingMetrics metrics = server.Run(trace);

  SchemblePoint point;
  point.wall_seconds = SimTimeToSeconds(wall.Now() - start);
  point.processed_fraction =
      static_cast<double>(metrics.processed) / static_cast<double>(trace.size());
  point.scheduler_runs = policy.scheduler_runs();
  point.lock = server.lock_stats();
  point.sched = server.scheduler_stats();
  return point;
}

/// Cross-query batching sweep (DESIGN.md "Cross-query batching"): the full
/// Schemble policy (oracle scores, DP scheduler) on the two-model image
/// retrieval ensemble, force mode, sleep-mode service, batching off vs on.
/// The workload is the stress fleet's bursty overlay — a low Poisson floor
/// with a diurnal burst an order of magnitude above the unbatched service
/// capacity — so the batched runs have deep backlogs to coalesce while the
/// floor segments exercise the low-load (unchanged-latency) path.
struct BatchedPoint {
  double wall_seconds = 0.0;
  double throughput_qps = 0.0;
  double p50_latency_ms = 0.0;
  ConcurrentServer::SchedulerStatsSnapshot sched;
};

BatchedPoint RunBatched(const SyntheticTask& task,
                        const AccuracyProfile& profile,
                        const DiscrepancyScorer& scorer,
                        const QueryTrace& trace, int workers, int domains,
                        bool batching) {
  SCHEMBLE_CHECK_EQ(workers % task.num_models(), 0);
  const int replicas = workers / task.num_models();

  // One policy instance per domain (stateful calls are serialized per
  // domain); unique_ptrs because SchemblePolicy's atomic counters make it
  // immovable.
  std::vector<std::unique_ptr<SchemblePolicy>> policies;
  std::vector<ServingPolicy*> policy_ptrs;
  for (int d = 0; d < domains; ++d) {
    SchembleConfig config;
    config.score_source = ScoreSource::kOracle;
    policies.push_back(std::make_unique<SchemblePolicy>(
        task, profile, nullptr, &scorer, std::move(config)));
    policy_ptrs.push_back(policies.back().get());
  }

  ConcurrentServerOptions options;
  for (int k = 0; k < task.num_models(); ++k) {
    options.executor_models.insert(options.executor_models.end(),
                                   static_cast<size_t>(replicas), k);
  }
  options.allow_rejection = false;
  options.speedup = 40.0;
  options.num_domains = domains;
  options.routing = RoutingPolicyKind::kLeastLoaded;
  options.batching = batching;
  ConcurrentServer server(task, std::move(policy_ptrs), options);

  SteadyClock wall(1.0);
  const SimTime start = wall.Now();
  const ServingMetrics metrics = server.Run(trace);

  BatchedPoint point;
  point.wall_seconds = SimTimeToSeconds(wall.Now() - start);
  point.throughput_qps =
      static_cast<double>(metrics.processed) / point.wall_seconds;
  point.p50_latency_ms = metrics.latency_ms.Quantile(0.5);
  point.sched = server.scheduler_stats();
  return point;
}

/// Poisson floor + QaDayShape burst with disjoint query-id ranges, merged
/// by arrival time (the stress fleet's bursty-overlay construction).
QueryTrace BuildBurstyTrace(const SyntheticTask& task, double floor_qps,
                            double burst_peak_qps) {
  ConstantDeadline deadlines(60 * kSecond);
  DiurnalTraffic burst = DiurnalTraffic::QaDayShape(
      burst_peak_qps, /*segment_duration=*/250 * kMillisecond);
  const SimTime duration = burst.total_duration();

  PoissonTraffic floor(floor_qps);
  TraceOptions floor_options;
  floor_options.seed = 7;
  floor_options.first_query_id = 1000000;
  QueryTrace trace = BuildTrace(task, floor, deadlines, duration,
                                floor_options);

  TraceOptions burst_options;
  burst_options.seed = 13;
  burst_options.first_query_id = 5000000;
  const QueryTrace overlay =
      BuildTrace(task, burst, deadlines, duration, burst_options);
  trace.items.insert(trace.items.end(), overlay.items.begin(),
                     overlay.items.end());
  std::stable_sort(trace.items.begin(), trace.items.end(),
                   [](const TracedQuery& a, const TracedQuery& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  return trace;
}

bool WriteJson(const char* path, const std::vector<JsonEntry>& entries) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_runtime: cannot open %s for writing\n", path);
    return false;
  }
  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"executable\": \"bench_runtime\",\n");
  std::fprintf(f, "    \"library_build_type\": \"release\"\n  },\n");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const JsonEntry& e = entries[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", e.name.c_str());
    std::fprintf(f, "      \"run_name\": \"%s\",\n", e.name.c_str());
    std::fprintf(f, "      \"run_type\": \"iteration\",\n");
    std::fprintf(f, "      \"iterations\": 1,\n");
    std::fprintf(f, "      \"real_time\": %.6e,\n", e.value_us);
    std::fprintf(f, "      \"cpu_time\": %.6e,\n", e.value_us);
    std::fprintf(f, "      \"time_unit\": \"us\"");
    for (const auto& [key, value] : e.counters) {
      std::fprintf(f, ",\n      \"%s\": %.6e", key.c_str(), value);
    }
    std::fprintf(f, "\n    }%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const SyntheticTask task = MakeTextMatchingTask();
  // 160 qps against a 22 qps single-executor capacity: ~7.2x oversubscribed,
  // so queues stay saturated through the 8-worker run.
  PoissonTraffic traffic(160.0);
  ConstantDeadline deadlines(60 * kSecond);
  TraceOptions trace_options;
  trace_options.seed = 7;
  const QueryTrace trace =
      BuildTrace(task, traffic, deadlines, 5 * kSecond, trace_options);

  std::printf("bench_runtime: %lld queries on model %d, sleep-mode service\n\n",
              static_cast<long long>(trace.size()), kModel);
  // lock_held_ms / lock_acq measure the policy critical section: completion
  // (aggregation + KNN fill) runs off-lock, so held time should stay a
  // small fraction of wall time even as workers scale.
  TextTable table({"workers", "wall_s", "throughput_qps", "mean_latency_ms",
                   "speedup_vs_1", "lock_acq", "lock_held_ms"});
  std::vector<JsonEntry> entries;
  double base_qps = 0.0;
  double qps_at_4 = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    const ScalingPoint point = RunOnce(task, trace, workers, 40.0);
    if (workers == 1) base_qps = point.throughput_qps;
    if (workers == 4) qps_at_4 = point.throughput_qps;
    char wall[32], qps[32], lat[32], rel[32], held[32];
    std::snprintf(wall, sizeof(wall), "%.2f", point.wall_seconds);
    std::snprintf(qps, sizeof(qps), "%.0f", point.throughput_qps);
    std::snprintf(lat, sizeof(lat), "%.1f", point.mean_latency_ms);
    std::snprintf(rel, sizeof(rel), "%.2fx", point.throughput_qps / base_qps);
    std::snprintf(held, sizeof(held), "%.1f", point.lock.held_ms);
    table.AddRow({std::to_string(point.workers), wall, qps, lat, rel,
                  std::to_string(point.lock.acquisitions), held});
    JsonEntry entry;
    entry.name = "BM_RuntimeStatic/workers:" + std::to_string(workers);
    entry.value_us = point.wall_seconds * 1e6;
    entry.counters = {
        {"throughput_qps", point.throughput_qps},
        {"lock_acquisitions", static_cast<double>(point.lock.acquisitions)},
        {"lock_held_ms", point.lock.held_ms},
    };
    entries.push_back(std::move(entry));
  }
  table.Print();

  const double scaling = qps_at_4 / base_qps;
  std::printf("\n4-worker scaling: %.2fx (acceptance bar: >2x)\n\n", scaling);

  // Sharded sweep: the same sleep-mode workload at 10x the arrival rate so
  // queues stay saturated out to 64 executors, crossed with 1 vs 4
  // scheduler domains. The 1-domain rows expose where the single
  // admitter/scheduler pair stops keeping up; the 4-domain rows are the
  // headline scaling claim (ROADMAP: >= 3x the 8-worker baseline at 32
  // workers / 4 domains).
  PoissonTraffic sharded_traffic(1600.0);
  TraceOptions sharded_trace_options;
  sharded_trace_options.seed = 7;
  const QueryTrace sharded_trace = BuildTrace(
      task, sharded_traffic, deadlines, 5 * kSecond, sharded_trace_options);
  std::printf("sharded sweep: %lld queries, least-loaded routing\n",
              static_cast<long long>(sharded_trace.size()));
  TextTable sharded_table({"workers", "domains", "wall_s", "throughput_qps",
                           "vs_8w_1d", "steals", "rebalances",
                           "plans_invalidated"});
  double sharded_base_qps = 0.0;
  double qps_32w_4d = 0.0;
  for (int workers : {8, 16, 32, 64}) {
    for (int domains : {1, 4}) {
      const ScalingPoint point =
          RunOnce(task, sharded_trace, workers, 40.0, domains);
      if (workers == 8 && domains == 1) sharded_base_qps = point.throughput_qps;
      if (workers == 32 && domains == 4) qps_32w_4d = point.throughput_qps;
      char wall[32], qps[32], rel[32];
      std::snprintf(wall, sizeof(wall), "%.2f", point.wall_seconds);
      std::snprintf(qps, sizeof(qps), "%.0f", point.throughput_qps);
      std::snprintf(rel, sizeof(rel), "%.2fx",
                    point.throughput_qps / sharded_base_qps);
      sharded_table.AddRow({std::to_string(workers), std::to_string(domains),
                            wall, qps, rel, std::to_string(point.sched.steals),
                            std::to_string(point.sched.rebalances),
                            std::to_string(point.sched.plans_invalidated)});
      JsonEntry entry;
      entry.name = "BM_RuntimeSharded/workers:" + std::to_string(workers) +
                   "/domains:" + std::to_string(domains);
      entry.value_us = point.wall_seconds * 1e6;
      entry.counters = {
          {"throughput_qps", point.throughput_qps},
          {"lock_acquisitions", static_cast<double>(point.lock.acquisitions)},
          {"lock_held_ms", point.lock.held_ms},
          {"steals", static_cast<double>(point.sched.steals)},
          {"stolen", static_cast<double>(point.sched.stolen)},
          {"rebalances", static_cast<double>(point.sched.rebalances)},
          {"donated", static_cast<double>(point.sched.donated)},
          {"plans_invalidated",
           static_cast<double>(point.sched.plans_invalidated)},
      };
      entries.push_back(std::move(entry));
    }
  }
  sharded_table.Print();

  const double sharded_scaling = qps_32w_4d / sharded_base_qps;
  // Calibrated target is >=3x (observed 4.0x on an idle host); the hard
  // gate sits at 1.5x so a time-shared CI runner does not flake the smoke
  // run while catastrophic serialization (ratio ~1x) still fails it. The
  // pinned-baseline counter check (check_regression.py
  // --counter-min-ratio throughput_qps=...) covers finer regressions.
  std::printf("\n32-worker/4-domain scaling vs 8-worker/1-domain: %.2fx "
              "(target: >=3x, gate: >=1.5x)\n\n",
              sharded_scaling);

  // Sharded-arrival sweep: the pump-count dimension. Twice the sharded
  // sweep's arrival rate and deliberately tiny inboxes AND executor
  // queues make domain backpressure reach the pumps: a full inbox parks a
  // pump on the blocking push, and a SINGLE pump parked on one domain
  // head-of-line blocks ingest for every other domain, starving their
  // executors once they drain (stealing trickles work over but cannot
  // keep 3 domains fed through one 32-entry inbox). Four pumps park
  // independently, so the other partitions keep every inbox topped up.
  // Sleep-mode service: parked pumps cost no CPU, so the effect measures
  // the pipeline shape, not host core count (calibrated 1.5-1.6x on a
  // 2-core container at 64 workers).
  PoissonTraffic arrival_traffic(3200.0);
  TraceOptions arrival_trace_options;
  arrival_trace_options.seed = 7;
  const QueryTrace arrival_trace = BuildTrace(
      task, arrival_traffic, deadlines, 5 * kSecond, arrival_trace_options);
  std::printf("sharded-arrival sweep: %lld queries, 4 domains, tiny "
              "inboxes, least-loaded routing\n",
              static_cast<long long>(arrival_trace.size()));
  TextTable arrival_table({"workers", "pumps", "wall_s", "throughput_qps",
                           "vs_1_pump", "replans_skipped"});
  double qps_64w_1p = 0.0;
  double qps_64w_4p = 0.0;
  for (int workers : {32, 64}) {
    double one_pump_qps = 0.0;
    for (int pumps : {1, 4}) {
      const ScalingPoint point =
          RunOnce(task, arrival_trace, workers, 40.0, /*domains=*/4, pumps,
                  /*inbox_capacity=*/32, /*queue_capacity=*/2);
      if (pumps == 1) one_pump_qps = point.throughput_qps;
      if (workers == 64 && pumps == 1) qps_64w_1p = point.throughput_qps;
      if (workers == 64 && pumps == 4) qps_64w_4p = point.throughput_qps;
      char wall[32], qps[32], rel[32];
      std::snprintf(wall, sizeof(wall), "%.2f", point.wall_seconds);
      std::snprintf(qps, sizeof(qps), "%.0f", point.throughput_qps);
      std::snprintf(rel, sizeof(rel), "%.2fx",
                    point.throughput_qps / one_pump_qps);
      arrival_table.AddRow({std::to_string(workers), std::to_string(pumps),
                            wall, qps, rel,
                            std::to_string(point.sched.replans_skipped)});
      JsonEntry entry;
      entry.name = "BM_RuntimeShardedArrival/workers:" +
                   std::to_string(workers) +
                   "/domains:4/pumps:" + std::to_string(pumps);
      entry.value_us = point.wall_seconds * 1e6;
      entry.counters = {
          {"throughput_qps", point.throughput_qps},
          {"replans_skipped",
           static_cast<double>(point.sched.replans_skipped)},
      };
      for (size_t p = 0; p < point.pump_routed.size(); ++p) {
        entry.counters.emplace_back(
            "routed_pump" + std::to_string(p),
            static_cast<double>(point.pump_routed[p]));
      }
      entries.push_back(std::move(entry));
    }
  }
  arrival_table.Print();

  const double arrival_speedup =
      qps_64w_1p > 0.0 ? qps_64w_4p / qps_64w_1p : 0.0;
  // Calibrated target is >=1.3x; the hard gate sits at 1.2x for
  // time-shared CI runners (same rationale as the sharded gate).
  std::printf("\n4 pumps vs 1 pump at 64 workers / 4 domains: %.2fx "
              "(target: >=1.3x, gate: >=1.2x)\n\n",
              arrival_speedup);

  // Batching sweep: Schemble on the two-model retrieval ensemble, bursty
  // overlay, batching off vs on at {8,32} workers x {1,4} domains.
  const SyntheticTask retrieval_task = MakeImageRetrievalTask();
  const auto retrieval_history = retrieval_task.GenerateDataset(
      2000, DifficultyDistribution::UniformFull(), 5);
  auto retrieval_scorer_result =
      DiscrepancyScorer::Fit(retrieval_task, retrieval_history);
  SCHEMBLE_CHECK(retrieval_scorer_result.ok());
  const DiscrepancyScorer retrieval_scorer =
      std::move(retrieval_scorer_result).value();
  auto retrieval_profile_result = AccuracyProfile::Build(
      retrieval_task, retrieval_history,
      retrieval_scorer.ScoreAll(retrieval_history));
  SCHEMBLE_CHECK(retrieval_profile_result.ok());
  const AccuracyProfile retrieval_profile =
      std::move(retrieval_profile_result).value();

  // Burst peak ~3x the 32-worker unbatched capacity (~168 qps on the 95 ms
  // model) so coalescing has backlog to amortize; the 30 qps floor keeps
  // low-load segments in the mix.
  const QueryTrace bursty_trace =
      BuildBurstyTrace(retrieval_task, /*floor_qps=*/30.0,
                       /*burst_peak_qps=*/500.0);
  std::printf("batching sweep: %lld queries, schemble policy, bursty "
              "overlay, force mode\n",
              static_cast<long long>(bursty_trace.size()));
  TextTable batched_table({"workers", "domains", "batching", "wall_s",
                           "throughput_qps", "p50_ms", "batches",
                           "tasks_batched", "occupancy"});
  double unbatched_qps_32w_4d = 0.0;
  double batched_qps_32w_4d = 0.0;
  for (int workers : {8, 32}) {
    for (int domains : {1, 4}) {
      for (bool batching : {false, true}) {
        const BatchedPoint point =
            RunBatched(retrieval_task, retrieval_profile, retrieval_scorer,
                       bursty_trace, workers, domains, batching);
        if (workers == 32 && domains == 4) {
          (batching ? batched_qps_32w_4d : unbatched_qps_32w_4d) =
              point.throughput_qps;
        }
        char wall[32], qps[32], p50[32], occ[32];
        std::snprintf(wall, sizeof(wall), "%.2f", point.wall_seconds);
        std::snprintf(qps, sizeof(qps), "%.0f", point.throughput_qps);
        std::snprintf(p50, sizeof(p50), "%.1f", point.p50_latency_ms);
        std::snprintf(occ, sizeof(occ), "%.2f",
                      point.sched.mean_batch_occupancy());
        batched_table.AddRow(
            {std::to_string(workers), std::to_string(domains),
             batching ? "on" : "off", wall, qps, p50,
             std::to_string(point.sched.batches_executed),
             std::to_string(point.sched.tasks_batched), occ});
        JsonEntry entry;
        entry.name = "BM_RuntimeBatched/workers:" + std::to_string(workers) +
                     "/domains:" + std::to_string(domains) +
                     "/batching:" + std::to_string(batching ? 1 : 0);
        entry.value_us = point.wall_seconds * 1e6;
        entry.counters = {
            {"throughput_qps", point.throughput_qps},
            {"p50_latency_ms", point.p50_latency_ms},
            {"batches_executed",
             static_cast<double>(point.sched.batches_executed)},
            {"tasks_batched", static_cast<double>(point.sched.tasks_batched)},
            {"mean_batch_occupancy", point.sched.mean_batch_occupancy()},
        };
        entries.push_back(std::move(entry));
      }
    }
  }
  batched_table.Print();

  const double batching_speedup =
      unbatched_qps_32w_4d > 0.0 ? batched_qps_32w_4d / unbatched_qps_32w_4d
                                 : 0.0;
  // Calibrated target is >=1.5x under the burst; the hard gate sits at
  // 1.2x for time-shared CI runners (same rationale as the sharded gate).
  std::printf("\nbatched vs unbatched at 32 workers / 4 domains: %.2fx "
              "(target: >=1.5x, gate: >=1.2x)\n\n",
              batching_speedup);

  std::printf("schemble policy pressure (oracle scores, DP scheduler, "
              "rejection mode):\n");
  TextTable schemble_table({"wall_s", "processed_frac", "sched_runs",
                            "plans_invalidated", "replans_skipped",
                            "lock_acq", "lock_held_ms"});
  const SchemblePoint sp = RunSchemble(50.0);
  {
    char wall[32], frac[32], held[32];
    std::snprintf(wall, sizeof(wall), "%.2f", sp.wall_seconds);
    std::snprintf(frac, sizeof(frac), "%.3f", sp.processed_fraction);
    std::snprintf(held, sizeof(held), "%.1f", sp.lock.held_ms);
    schemble_table.AddRow({wall, frac, std::to_string(sp.scheduler_runs),
                           std::to_string(sp.sched.plans_invalidated),
                           std::to_string(sp.sched.replans_skipped),
                           std::to_string(sp.lock.acquisitions), held});
  }
  schemble_table.Print();

  {
    // The Schemble row pins lock-held time (the number snapshot planning
    // exists to shrink) rather than makespan, which is trace-length-bound.
    JsonEntry entry;
    entry.name = "BM_RuntimeSchemble/lock_held";
    entry.value_us = sp.lock.held_ms * 1e3;
    entry.counters = {
        {"wall_seconds", sp.wall_seconds},
        {"processed_fraction", sp.processed_fraction},
        {"scheduler_runs", static_cast<double>(sp.scheduler_runs)},
        {"plans_invalidated", static_cast<double>(sp.sched.plans_invalidated)},
        {"replans_skipped", static_cast<double>(sp.sched.replans_skipped)},
        {"lock_acquisitions", static_cast<double>(sp.lock.acquisitions)},
    };
    entries.push_back(std::move(entry));
  }

  if (json_path != nullptr && !WriteJson(json_path, entries)) return 1;

  if (scaling <= 2.0) {
    std::printf("FAIL: insufficient scaling\n");
    return 1;
  }
  if (sharded_scaling < 1.5) {
    std::printf("FAIL: insufficient sharded scaling\n");
    return 1;
  }
  if (arrival_speedup < 1.2) {
    std::printf("FAIL: insufficient multi-pump arrival speedup\n");
    return 1;
  }
  if (sp.sched.replans_skipped <= 0) {
    std::printf("FAIL: schemble pressure run skipped no replans\n");
    return 1;
  }
  if (batching_speedup < 1.2) {
    std::printf("FAIL: insufficient batching speedup\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace
}  // namespace schemble

int main(int argc, char** argv) { return schemble::Main(argc, argv); }
