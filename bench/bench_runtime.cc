// Throughput scaling of the wall-clock concurrent runtime: one base model
// (RoBERTa, 45 ms) replicated across 1..8 executors, a saturating
// open-loop arrival stream, force mode (every query processed). Reported
// throughput is completed queries per second of runtime wall time; the
// acceptance bar is >2x at 4 workers vs 1. Service consumption sleeps on
// the OS timer (accelerator-offloaded inference), so scaling tracks
// executor parallelism rather than host core count.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/static_policy.h"
#include "common/table.h"
#include "models/task_factory.h"
#include "runtime/concurrent_server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

namespace schemble {
namespace {

// Every query runs exactly one task on model 1 (the 45 ms RoBERTa).
constexpr SubsetMask kSubset = 0b010;
constexpr int kModel = 1;

struct ScalingPoint {
  int workers = 0;
  double wall_seconds = 0.0;
  double throughput_qps = 0.0;
  double mean_latency_ms = 0.0;
  ConcurrentServer::LockStatsSnapshot lock;
};

ScalingPoint RunOnce(const SyntheticTask& task, const QueryTrace& trace,
                     int workers, double speedup) {
  StaticDeployment deployment;
  deployment.subset = kSubset;
  deployment.replicas = {0, workers, 0};
  StaticPolicy policy(deployment);

  ConcurrentServerOptions options;
  options.executor_models.assign(static_cast<size_t>(workers), kModel);
  options.allow_rejection = false;
  options.speedup = speedup;
  ConcurrentServer server(task, &policy, options);

  SteadyClock wall(1.0);
  const SimTime start = wall.Now();
  const ServingMetrics metrics = server.Run(trace);
  const double seconds = SimTimeToSeconds(wall.Now() - start);

  ScalingPoint point;
  point.workers = workers;
  point.wall_seconds = seconds;
  point.throughput_qps = static_cast<double>(metrics.processed) / seconds;
  point.mean_latency_ms = metrics.mean_latency_ms();
  point.lock = server.lock_stats();
  return point;
}

int Main() {
  const SyntheticTask task = MakeTextMatchingTask();
  // 160 qps against a 22 qps single-executor capacity: ~7.2x oversubscribed,
  // so queues stay saturated through the 8-worker run.
  PoissonTraffic traffic(160.0);
  ConstantDeadline deadlines(60 * kSecond);
  TraceOptions trace_options;
  trace_options.seed = 7;
  const QueryTrace trace =
      BuildTrace(task, traffic, deadlines, 5 * kSecond, trace_options);

  std::printf("bench_runtime: %lld queries on model %d, sleep-mode service\n\n",
              static_cast<long long>(trace.size()), kModel);
  // lock_held_ms / lock_acq measure the policy critical section: completion
  // (aggregation + KNN fill) runs off-lock, so held time should stay a
  // small fraction of wall time even as workers scale.
  TextTable table({"workers", "wall_s", "throughput_qps", "mean_latency_ms",
                   "speedup_vs_1", "lock_acq", "lock_held_ms"});
  double base_qps = 0.0;
  double qps_at_4 = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    const ScalingPoint point = RunOnce(task, trace, workers, 40.0);
    if (workers == 1) base_qps = point.throughput_qps;
    if (workers == 4) qps_at_4 = point.throughput_qps;
    char wall[32], qps[32], lat[32], rel[32], held[32];
    std::snprintf(wall, sizeof(wall), "%.2f", point.wall_seconds);
    std::snprintf(qps, sizeof(qps), "%.0f", point.throughput_qps);
    std::snprintf(lat, sizeof(lat), "%.1f", point.mean_latency_ms);
    std::snprintf(rel, sizeof(rel), "%.2fx", point.throughput_qps / base_qps);
    std::snprintf(held, sizeof(held), "%.1f", point.lock.held_ms);
    table.AddRow({std::to_string(point.workers), wall, qps, lat, rel,
                  std::to_string(point.lock.acquisitions), held});
  }
  table.Print();

  const double scaling = qps_at_4 / base_qps;
  std::printf("\n4-worker scaling: %.2fx (acceptance bar: >2x)\n", scaling);
  if (scaling <= 2.0) {
    std::printf("FAIL: insufficient scaling\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace
}  // namespace schemble

int main() { return schemble::Main(); }
