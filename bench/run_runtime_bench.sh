#!/usr/bin/env bash
# Regenerates the concurrent-runtime benchmark baseline
# (bench/BENCH_runtime.json) from bench_runtime: wall-clock worker scaling
# plus the Schemble-pressure lock-contention scenario.
#
# Usage:
#   bench/run_runtime_bench.sh [output.json]
#
# Expects build/bench/bench_runtime to exist (override with $BENCH_BIN),
# i.e. run after:
#   cmake -B build -S . && cmake --build build --target bench_runtime
# or use the one-command wrapper target:
#   cmake --build build --target schemble_bench_runtime
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${1:-$ROOT/bench/BENCH_runtime.json}"
BIN="${BENCH_BIN:-$ROOT/build/bench/bench_runtime}"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found/executable." >&2
  echo "build it first: cmake --build build --target bench_runtime" >&2
  exit 1
fi

# bench_runtime measures whole-run makespans itself (no google-benchmark
# runner); --json emits the google-benchmark JSON shape that
# bench/check_regression.py consumes.
"$BIN" --json="$OUT" "${@:2}"

echo "wrote $OUT"
